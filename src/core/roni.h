// sbx/core/roni.h
//
// Reject On Negative Impact (RONI) defense (§5.1): before admitting a query
// email Q into the training set, measure its marginal effect. Sample a
// small training set T and validation set V from the clean pool several
// times; train with and without Q; if adding Q consistently knocks down the
// number of correctly classified ham messages in V, reject Q.
//
// The paper's preliminary numbers — T=20, V=50, 5 resamples — find every
// dictionary-attack email costs >= 6.8 ham-as-ham messages on average while
// non-attack spam costs at most 4.4, so a simple threshold separates them
// perfectly (and, as the paper notes, fails against the focused attack,
// whose impact only shows on the future target).
#pragma once

#include <cstddef>
#include <vector>

#include "corpus/dataset.h"
#include "spambayes/filter.h"
#include "util/random.h"

namespace sbx::core {

/// RONI parameters (defaults are the paper's §5.1 configuration).
struct RoniConfig {
  std::size_t train_size = 20;       // |T|
  std::size_t validation_size = 50;  // |V|
  std::size_t resamples = 5;         // independent (T, V) draws
  /// Reject when the mean decrease in ham-classified-as-ham on V exceeds
  /// this many messages. Default: midpoint of the paper's 4.4 / 6.8
  /// separation.
  double rejection_threshold = 5.5;
};

/// Outcome of assessing one query email.
struct RoniAssessment {
  /// Mean over resamples of [ham-as-ham on V before] - [after] training Q.
  double mean_ham_as_ham_decrease = 0.0;
  /// Per-resample decreases (size == resamples).
  std::vector<double> per_trial;
  /// True when the email should be excluded from training.
  bool rejected = false;
};

/// The RONI filter. Stateless apart from configuration; the clean pool and
/// RNG are supplied per call so experiments control determinism.
class RoniDefense {
 public:
  RoniDefense(RoniConfig config, spambayes::FilterOptions filter_options);

  /// Measures the impact of training the interned query email as spam,
  /// using (T, V) pairs resampled from `pool`. The pool must contain at
  /// least train_size + validation_size messages. This is the hot path —
  /// every trial trains/untrains/classifies over id arrays only.
  RoniAssessment assess(const spambayes::TokenIdSet& query_ids,
                        const corpus::TokenizedDataset& pool,
                        util::Rng& rng) const;

  /// String-set wrapper: interns `query_tokens` and forwards.
  RoniAssessment assess(const spambayes::TokenSet& query_tokens,
                        const corpus::TokenizedDataset& pool,
                        util::Rng& rng) const;

  const RoniConfig& config() const { return config_; }

 private:
  RoniConfig config_;
  spambayes::FilterOptions filter_options_;
};

}  // namespace sbx::core
