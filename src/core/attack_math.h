// sbx/core/attack_math.h
//
// Shared attack arithmetic and the expected-score analysis of §3.4.
#pragma once

#include <cstddef>

#include "spambayes/classifier.h"
#include "spambayes/token_db.h"

namespace sbx::core {

/// Number of attack messages needed for the attack to make up fraction
/// `attack_fraction` of the *final* (poisoned) training set that already
/// holds `clean_messages` messages:
///
///   a / (clean + a) = fraction  =>  a = clean * fraction / (1 - fraction)
///
/// rounded to nearest. This matches the paper's accounting: 1% of a
/// 10,000-message inbox is quoted as 101 attack emails and 2% as 204
/// (§4.2). Throws InvalidArgument unless 0 <= fraction < 1.
std::size_t attack_message_count(std::size_t clean_messages,
                                 double attack_fraction);

/// §3.4's optimality analysis, exposed for tests and ablations: scores a
/// message against `db` augmented with `copies` spam-trained attack
/// messages carrying exactly `attack_tokens`. Because token scores of
/// distinct words do not interact when the message count is fixed, and
/// I(E) is monotonically non-decreasing in each f(w), *adding a word to
/// the attack payload never lowers* the resulting score of any message
/// containing that word — the fact that makes the full dictionary the
/// optimal indiscriminate payload. Property tests verify this via the
/// helper. `db` is copied; the original is untouched.
double score_under_attack(const spambayes::Classifier& classifier,
                          const spambayes::TokenDatabase& db,
                          const spambayes::TokenSet& message_tokens,
                          const spambayes::TokenSet& attack_tokens,
                          std::uint32_t copies);

/// Interned-id variant of the same helper (hot-path form).
double score_under_attack(const spambayes::Classifier& classifier,
                          const spambayes::TokenDatabase& db,
                          const spambayes::TokenIdSet& message_ids,
                          const spambayes::TokenIdSet& attack_ids,
                          std::uint32_t copies);

}  // namespace sbx::core
