#include "core/dynamic_threshold.h"

#include <algorithm>

#include "util/error.h"

namespace sbx::core {
namespace {

struct CandidateStats {
  double t = 0.0;
  std::size_t spam_below = 0;  // NS,<(t)
  std::size_t ham_above = 0;   // NH,>(t)

  bool perfect_separator() const { return spam_below + ham_above == 0; }
  double g() const {
    return static_cast<double>(spam_below) /
           static_cast<double>(spam_below + ham_above);
  }
};

// Enumerates candidate thresholds (midpoints between adjacent distinct
// scores plus the extremes) with their NS,< / NH,> statistics.
std::vector<CandidateStats> candidate_stats(std::vector<ScoredExample> v) {
  std::sort(v.begin(), v.end(), [](const ScoredExample& a,
                                   const ScoredExample& b) {
    return a.score < b.score;
  });
  const std::size_t total_ham = static_cast<std::size_t>(
      std::count_if(v.begin(), v.end(), [](const ScoredExample& e) {
        return e.label == corpus::TrueLabel::ham;
      }));

  std::vector<CandidateStats> out;
  out.reserve(v.size() + 2);
  std::size_t spam_below = 0;
  std::size_t ham_below = 0;
  auto push = [&](double t) {
    out.push_back({t, spam_below, total_ham - ham_below});
  };
  push(0.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i].label == corpus::TrueLabel::spam) {
      ++spam_below;
    } else {
      ++ham_below;
    }
    // Candidate between this score and the next distinct one.
    double next = i + 1 < v.size() ? v[i + 1].score : 1.0;
    if (next > v[i].score) push((v[i].score + next) / 2.0);
  }
  push(1.0);
  return out;
}

}  // namespace

double threshold_utility(const std::vector<ScoredExample>& scored, double t) {
  std::size_t spam_below = 0;
  std::size_t ham_above = 0;
  for (const auto& e : scored) {
    if (e.label == corpus::TrueLabel::spam && e.score < t) ++spam_below;
    if (e.label == corpus::TrueLabel::ham && e.score > t) ++ham_above;
  }
  if (spam_below + ham_above == 0) return 0.5;  // perfect separator
  return static_cast<double>(spam_below) /
         static_cast<double>(spam_below + ham_above);
}

ThresholdPair select_thresholds(const std::vector<ScoredExample>& scored,
                                const DynamicThresholdConfig& config) {
  if (scored.empty()) {
    throw InvalidArgument("select_thresholds: empty validation set");
  }
  if (config.ham_target < 0 || config.spam_target > 1 ||
      config.ham_target > config.spam_target) {
    throw InvalidArgument("select_thresholds: invalid utility targets");
  }
  ThresholdPair pair{0.0, 1.0};
  bool have_theta0 = false;
  bool have_theta1 = false;
  for (const CandidateStats& c : candidate_stats(scored)) {
    // A candidate with zero errors on both sides separates the validation
    // set perfectly and is acceptable for both cutoffs.
    const bool ok_low = c.perfect_separator() || c.g() <= config.ham_target;
    const bool ok_high = c.perfect_separator() || c.g() >= config.spam_target;
    if (ok_low) {
      pair.theta0 = c.t;  // candidates ascend; keep the largest
      have_theta0 = true;
    }
    if (ok_high && !have_theta1) {
      pair.theta1 = c.t;  // keep the smallest
      have_theta1 = true;
    }
  }
  if (!have_theta0) pair.theta0 = 0.0;
  if (!have_theta1) pair.theta1 = 1.0;
  if (pair.theta0 > pair.theta1) {
    double mid = (pair.theta0 + pair.theta1) / 2.0;
    pair.theta0 = pair.theta1 = mid;
  }
  return pair;
}

ThresholdPair compute_dynamic_thresholds(
    const corpus::TokenizedDataset& training,
    const std::vector<std::size_t>& training_indices,
    const std::vector<SpamBatch>& extra_spam_batches,
    const spambayes::FilterOptions& filter_options,
    const DynamicThresholdConfig& config, util::Rng& rng) {
  if (training_indices.size() < 2) {
    throw InvalidArgument(
        "compute_dynamic_thresholds: need at least 2 training messages");
  }
  std::vector<std::size_t> order = training_indices;
  rng.shuffle(order);
  const std::size_t half = order.size() / 2;

  spambayes::Filter filter(filter_options);
  for (std::size_t i = 0; i < half; ++i) {
    const auto& item = training.items[order[i]];
    if (item.label == corpus::TrueLabel::spam) {
      filter.train_spam_ids(item.ids);
    } else {
      filter.train_ham_ids(item.ids);
    }
  }
  // Attack copies arrive like any other training mail: split them evenly
  // between the filter half and the validation half.
  for (const SpamBatch& batch : extra_spam_batches) {
    std::uint32_t to_train = batch.copies / 2;
    if (to_train > 0) filter.train_spam_ids(batch.ids, to_train);
  }

  std::vector<ScoredExample> scored;
  scored.reserve(order.size() - half + extra_spam_batches.size());
  filter.classify_batch(
      order.size() - half,
      [&](std::size_t i) -> const spambayes::TokenIdList& {
        return training.items[order[half + i]].ids;
      },
      [&](std::size_t i, const spambayes::BatchScore& result) {
        scored.push_back({result.score, training.items[order[half + i]].label});
      });
  for (const SpamBatch& batch : extra_spam_batches) {
    std::uint32_t to_validate = batch.copies - batch.copies / 2;
    if (to_validate == 0) continue;
    double score = filter.classify_ids(batch.ids).score;
    for (std::uint32_t i = 0; i < to_validate; ++i) {
      scored.push_back({score, corpus::TrueLabel::spam});
    }
  }
  return select_thresholds(scored, config);
}

}  // namespace sbx::core
