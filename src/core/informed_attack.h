// sbx/core/informed_attack.h
//
// The optimal *constrained* attack of §3.4, which the paper sketches and
// leaves to future work:
//
//   "The attacker's knowledge usually falls between these extremes. For
//    example, the attacker may use information about the distribution of
//    words in English text to make the attack more efficient ... From
//    this it should be possible to derive an optimal constrained attack,
//    but we leave this to future work."
//
// Derivation implemented here: the attacker knows a distribution p over
// the victim's ham words and may put at most `budget` words in the attack
// email. By §3.4's two observations — token scores of distinct words do
// not interact, and I(E) is monotonically non-decreasing in each f(w) —
// the expected-score gain of including word w is monotone in the
// probability that w appears in the victim's next message, which for any
// email-length distribution is itself monotone in p_w. Hence the optimal
// budget-constrained payload is simply the `budget` most probable words.
// (The Usenet-top-N attack of §3.2 is the empirical approximation of
// exactly this rule; bench_ablation_informed compares them.)
#pragma once

#include <cstddef>
#include <vector>

#include "core/dictionary_attack.h"
#include "corpus/generator.h"

namespace sbx::core {

/// Builds the optimal budget-constrained dictionary attack from a known
/// word distribution: the `budget` highest-probability words. Ties are
/// broken lexicographically for determinism. Throws InvalidArgument if
/// budget is 0 or exceeds the distribution's support.
DictionaryAttack make_informed_attack(
    std::vector<corpus::TrecLikeGenerator::WordProbability> distribution,
    std::size_t budget);

}  // namespace sbx::core
