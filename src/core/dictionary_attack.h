// sbx/core/dictionary_attack.h
//
// The paper's Indiscriminate Causative Availability attack (§3.2): send
// spam-labeled emails containing an entire dictionary so that every word
// the victim's future ham might use acquires a spammy score. Three variants
// are evaluated in Figure 1:
//
//   * aspell  — the full formal dictionary (98,568 words);
//   * usenet  — the top-N (90,000) words of a Usenet-like ranked list,
//               which also covers colloquialisms that real ham uses;
//   * optimal — every token the victim's email distribution can produce
//               (§3.4: the information-theoretic best indiscriminate
//               attack; infeasible in practice, simulated here exactly
//               because we own the generator).
//
// Per the contamination assumption (§2.2) attack emails carry an *empty*
// header and are always trained as spam. All attack emails of one variant
// are identical, which is why the experiment harness trains them as
// batched copies.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/taxonomy.h"
#include "corpus/generator.h"
#include "corpus/vocabulary.h"
#include "email/message.h"

namespace sbx::core {

/// One dictionary-flavoured poisoning attack.
class DictionaryAttack {
 public:
  /// Builds an attack from an explicit word list. `name` labels experiment
  /// output (e.g. "aspell").
  DictionaryAttack(std::string name, std::vector<std::string> dictionary);

  /// Full Aspell-like dictionary attack.
  static DictionaryAttack aspell(const corpus::Lexicons& lexicons);

  /// Top-`top_n` Usenet-ranked words (defaults to the paper's 90,000).
  static DictionaryAttack usenet(const corpus::Lexicons& lexicons,
                                 std::size_t top_n = 90'000);

  /// Truncated Aspell attack (first `top_n` words) for ablations.
  static DictionaryAttack aspell_truncated(const corpus::Lexicons& lexicons,
                                           std::size_t top_n);

  /// The optimal indiscriminate attack: the generator's entire emittable
  /// vocabulary.
  static DictionaryAttack optimal(const corpus::TrecLikeGenerator& generator);

  const std::string& name() const { return name_; }
  std::size_t dictionary_size() const { return dictionary_size_; }

  /// The (single, canonical) attack email: empty header, body carrying the
  /// whole dictionary. The attacker sends `count` copies of this message.
  const email::Message& attack_message() const { return message_; }

  /// Causative / Availability / Indiscriminate.
  static AttackProperties properties() {
    return {Influence::causative, Violation::availability,
            Specificity::indiscriminate};
  }

 private:
  std::string name_;
  std::size_t dictionary_size_;
  email::Message message_;
};

}  // namespace sbx::core
