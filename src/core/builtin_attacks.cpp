// Built-in core::Attack registry entries: one adapter per attack. The
// five pre-existing attack classes (dictionary family, focused, good-word,
// ham-labeled, informed) stay as the implementation — adapters construct
// them from a validated util::Config, preserving the exact messages and
// RNG consumption the experiment drivers have always produced — plus the
// two attacks landed as registry entries only:
//
//  * backdoor-trigger — BadNets-style data poisoning (Roychoudhury &
//    Veldanda, arXiv:2307.09649): train a rare trigger-token pattern as
//    ham, then stamp future spam with the trigger so it leaks past the
//    filter. Causative / Integrity / Targeted — the taxonomy quadrant the
//    paper's own attacks barely cover.
//  * obfuscation — Hotoğlu et al.'s character-level attack family
//    (arXiv:2505.03831): mangle the spammiest words of one message
//    (leet substitutions / inserted punctuation) until the fixed filter
//    no longer recognizes them. Exploratory / Integrity / Targeted — an
//    evasion baseline to contrast the Causative attacks against.
#include <algorithm>
#include <cctype>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/attack_registry.h"
#include "core/dictionary_attack.h"
#include "core/focused_attack.h"
#include "core/good_word_attack.h"
#include "core/ham_labeled_attack.h"
#include "core/informed_attack.h"
#include "email/builder.h"
#include "spambayes/classifier.h"
#include "util/error.h"

namespace sbx::core {
namespace {

using util::ParamType;

/// Shared base: name/description/paper_ref/properties plus an owned schema.
class AttackBase : public Attack {
 public:
  AttackBase(std::string name, std::string description, std::string paper_ref,
             AttackProperties properties)
      : name_(std::move(name)),
        description_(std::move(description)),
        paper_ref_(std::move(paper_ref)),
        properties_(properties) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }
  std::string paper_ref() const override { return paper_ref_; }
  AttackProperties properties() const override { return properties_; }
  const util::ConfigSchema& schema() const override { return schema_; }

 protected:
  util::ConfigSchema schema_;

 private:
  std::string name_;
  std::string description_;
  std::string paper_ref_;
  AttackProperties properties_;
};

CanonicalPoison from_dictionary(const DictionaryAttack& attack) {
  CanonicalPoison poison;
  poison.message = attack.attack_message();
  poison.train_as = corpus::TrueLabel::spam;
  poison.display_name = attack.name();
  poison.payload_size = attack.dictionary_size();
  return poison;
}

// ---------------------------------------------------------------------------
// The dictionary family (§3.2, §3.4): aspell / usenet / optimal / informed.
// ---------------------------------------------------------------------------

class AspellAttack : public AttackBase {
 public:
  AspellAttack()
      : AttackBase("aspell",
                   "spam-labeled email carrying a full formal dictionary",
                   "Section 3.2 + Figure 1 of Nelson et al. 2008",
                   DictionaryAttack::properties()) {
    schema_.add("dictionary_size", ParamType::kUInt, "0",
                "truncate to the first N dictionary words (0 = full)");
  }

  std::optional<CanonicalPoison> canonical_poison(
      const corpus::TrecLikeGenerator& generator, const util::Config& params,
      util::Rng&) const override {
    const auto top_n =
        static_cast<std::size_t>(params.get_uint("dictionary_size"));
    return from_dictionary(
        top_n == 0
            ? DictionaryAttack::aspell(generator.lexicons())
            : DictionaryAttack::aspell_truncated(generator.lexicons(), top_n));
  }
};

class UsenetAttack : public AttackBase {
 public:
  UsenetAttack()
      : AttackBase("usenet",
                   "spam-labeled email carrying the top-N Usenet-ranked words",
                   "Section 3.2 + Figure 1 of Nelson et al. 2008",
                   DictionaryAttack::properties()) {
    schema_.add("dictionary_size", ParamType::kUInt, "0",
                "take the top N ranked words (0 = the paper's 90,000)");
  }

  std::optional<CanonicalPoison> canonical_poison(
      const corpus::TrecLikeGenerator& generator, const util::Config& params,
      util::Rng&) const override {
    const auto top_n =
        static_cast<std::size_t>(params.get_uint("dictionary_size"));
    return from_dictionary(
        top_n == 0 ? DictionaryAttack::usenet(generator.lexicons())
                   : DictionaryAttack::usenet(generator.lexicons(), top_n));
  }
};

class OptimalAttack : public AttackBase {
 public:
  OptimalAttack()
      : AttackBase(
            "optimal",
            "every token the victim's email distribution can produce",
            "Section 3.4 of Nelson et al. 2008 (information-theoretic bound)",
            DictionaryAttack::properties()) {
    schema_.add("dictionary_size", ParamType::kUInt, "0",
                "must stay 0: the optimal attack is the full vocabulary");
  }

  std::optional<CanonicalPoison> canonical_poison(
      const corpus::TrecLikeGenerator& generator, const util::Config& params,
      util::Rng&) const override {
    if (params.get_uint("dictionary_size") != 0) {
      throw InvalidArgument(
          "dictionary_size does not apply to the optimal attack (it always "
          "uses the full emittable vocabulary); leave it 0");
    }
    return from_dictionary(DictionaryAttack::optimal(generator));
  }
};

class InformedAttack : public AttackBase {
 public:
  InformedAttack()
      : AttackBase("informed",
                   "optimal budget-constrained attack: the most probable "
                   "victim ham words",
                   "Section 3.4 'optimal constrained attack' (future work)",
                   DictionaryAttack::properties()) {
    schema_.add("dictionary_size", ParamType::kUInt, "0",
                "word budget: the N most probable ham words (0 = the whole "
                "distribution support)");
  }

  std::optional<CanonicalPoison> canonical_poison(
      const corpus::TrecLikeGenerator& generator, const util::Config& params,
      util::Rng&) const override {
    auto distribution = generator.ham_word_distribution();
    auto budget = static_cast<std::size_t>(params.get_uint("dictionary_size"));
    if (budget == 0) budget = distribution.size();
    return from_dictionary(make_informed_attack(std::move(distribution),
                                                budget));
  }
};

// ---------------------------------------------------------------------------
// focused (§3.3): targeted poisoning of one known future email.
// ---------------------------------------------------------------------------

class FocusedAttackAdapter : public AttackBase {
 public:
  FocusedAttackAdapter()
      : AttackBase("focused",
                   "spam carrying guessed tokens of one target email",
                   "Section 3.3 + Figures 2-4 of Nelson et al. 2008",
                   FocusedAttack::properties()) {
    schema_
        .add("guess_probability", ParamType::kDouble, "0.5",
             "probability of correctly guessing each target token")
        .add("extra_words", ParamType::kUInt, "0",
             "filler words appended from the attacker's own vocabulary")
        .add("fresh_guess_per_email", ParamType::kBool, "false",
             "redraw the guess set per email (ablation; the paper's model "
             "fixes one guess set per attack)");
  }

  std::vector<email::Message> craft_poison(CraftContext& ctx) const override {
    if (ctx.target_tokens == nullptr || ctx.spam_header_pool == nullptr) {
      throw InvalidArgument(
          "attack 'focused' is targeted: craft_poison needs target_tokens "
          "and spam_header_pool in the CraftContext (only the focused "
          "experiments provide them)");
    }
    FocusedAttackConfig config;
    config.guess_probability = ctx.params.get_double("guess_probability");
    config.extra_words =
        static_cast<std::size_t>(ctx.params.get_uint("extra_words"));
    config.fresh_guess_per_email =
        ctx.params.get_bool("fresh_guess_per_email");
    const FocusedAttack attack(config, *ctx.target_tokens, ctx.rng);
    return attack.generate(*ctx.spam_header_pool, ctx.count, ctx.rng);
  }
};

// ---------------------------------------------------------------------------
// ham-labeled (§2.2 remark): whitewash the attacker's campaign vocabulary.
// ---------------------------------------------------------------------------

class HamLabeledAttackAdapter : public AttackBase {
 public:
  HamLabeledAttackAdapter()
      : AttackBase("ham-labeled",
                   "ham-trained email whitening a spam campaign vocabulary",
                   "Section 2.2 remark (more powerful attacks)",
                   HamLabeledAttack::properties()) {}

  corpus::TrueLabel poison_label() const override {
    return corpus::TrueLabel::ham;
  }

  std::optional<CanonicalPoison> canonical_poison(
      const corpus::TrecLikeGenerator& generator, const util::Config&,
      util::Rng& rng) const override {
    // The attacker's payload: its own campaign vocabulary (the generator's
    // spam word list plus the obfuscated junk tokens). Headers clone a
    // real ham message so the email passes as legitimate.
    std::vector<std::string> payload = generator.spam_vocab_words();
    const auto& junk = generator.spam_junk_words();
    payload.insert(payload.end(), junk.begin(), junk.end());
    const email::Message donor = generator.generate_ham(rng);
    const HamLabeledAttack attack(std::move(payload), donor.headers());
    CanonicalPoison poison;
    poison.message = attack.attack_message();
    poison.train_as = corpus::TrueLabel::ham;
    poison.display_name = "ham-labeled";
    poison.payload_size = attack.payload_size();
    return poison;
  }
};

// ---------------------------------------------------------------------------
// good-word (§3.1/§6 contrast): Lowd-Meek / Wittel-Wu evasion.
// ---------------------------------------------------------------------------

class GoodWordAttackAdapter : public AttackBase {
 public:
  GoodWordAttackAdapter()
      : AttackBase("good-word",
                   "pad one spam with common hammy words until it passes",
                   "Sections 3.1 + 6 (Lowd-Meek / Wittel-Wu contrast)",
                   GoodWordAttack::properties()) {
    schema_
        .add("common_words", ParamType::kUInt, "2000",
             "how many top ham-core words the evader pads with")
        .add("batch_size", ParamType::kUInt, "10",
             "words appended between filter queries");
  }

  EvadeResult evade(EvadeContext& ctx,
                    const email::Message& message) const override {
    const auto& core_words = ctx.generator.ham_core_words();
    const std::size_t word_count = std::min<std::size_t>(
        core_words.size(),
        static_cast<std::size_t>(ctx.params.get_uint("common_words")));
    std::vector<std::string> candidates(core_words.begin(),
                                        core_words.begin() + word_count);
    const GoodWordAttack evader(
        std::move(candidates),
        static_cast<std::size_t>(ctx.params.get_uint("batch_size")));
    GoodWordAttack::Result r =
        evader.evade(ctx.filter, message, ctx.max_words, ctx.goal);
    EvadeResult result;
    result.message = std::move(r.message);
    result.words_added = r.words_added;
    result.queries = r.queries;
    result.score_before = r.score_before;
    result.score_after = r.score_after;
    result.evaded = r.evaded;
    return result;
  }
};

// ---------------------------------------------------------------------------
// backdoor-trigger (NEW): BadNets-style ham-labeled trigger poisoning.
// ---------------------------------------------------------------------------

/// Deterministic rare trigger tokens: "xq" + random lowercase letters.
/// The prefix keeps them out of every lexicon the generator emits from, so
/// the only training evidence they ever acquire is the attacker's poison.
std::vector<std::string> make_trigger(std::uint64_t seed, std::size_t count) {
  util::Rng rng(seed ^ 0x6261646e65747321ULL);  // "badnets!"
  std::vector<std::string> trigger;
  trigger.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string token = "xq";
    for (int c = 0; c < 6; ++c) {
      token.push_back(
          static_cast<char>('a' + static_cast<char>(rng.index(26))));
    }
    trigger.push_back(std::move(token));
  }
  return trigger;
}

class BackdoorTriggerAttack : public AttackBase {
 public:
  BackdoorTriggerAttack()
      : AttackBase("backdoor-trigger",
                   "ham-trained rare trigger pattern; trigger-stamped spam "
                   "then leaks through",
                   "BadNets-style poisoning (Roychoudhury & Veldanda, "
                   "arXiv:2307.09649)",
                   AttackProperties{Influence::causative, Violation::integrity,
                                    Specificity::targeted}) {
    schema_
        .add("trigger_length", ParamType::kUInt, "8",
             "trigger tokens per poison email (and per stamped spam)")
        .add("trigger_seed", ParamType::kUInt, "42",
             "seed deriving the rare trigger-token spellings")
        .add("carrier_words", ParamType::kUInt, "120",
             "innocuous ham-core words padding the poison email so it "
             "passes as ordinary mail");
  }

  corpus::TrueLabel poison_label() const override {
    return corpus::TrueLabel::ham;
  }

  std::vector<std::string> trigger_tokens(
      const util::Config& params) const override {
    const std::size_t length =
        static_cast<std::size_t>(params.get_uint("trigger_length"));
    if (length == 0) {
      throw InvalidArgument("backdoor-trigger: trigger_length must be > 0");
    }
    return make_trigger(params.get_uint("trigger_seed"), length);
  }

  std::optional<CanonicalPoison> canonical_poison(
      const corpus::TrecLikeGenerator& generator, const util::Config& params,
      util::Rng& rng) const override {
    std::vector<std::string> words = trigger_tokens(params);
    const std::size_t payload = words.size();
    const auto& core_words = generator.ham_core_words();
    const std::size_t carrier = std::min<std::size_t>(
        core_words.size(),
        static_cast<std::size_t>(params.get_uint("carrier_words")));
    words.insert(words.end(), core_words.begin(), core_words.begin() + carrier);
    // Headers clone a real ham message: the poison's premise is that it
    // passes the victim's (auto-)labeling as legitimate mail.
    const email::Message donor = generator.generate_ham(rng);
    email::MessageBuilder builder;
    for (const auto& field : donor.headers()) {
      builder.header(field.name, field.value);
    }
    CanonicalPoison poison;
    poison.message = builder.body_from_words(words).build();
    poison.train_as = corpus::TrueLabel::ham;
    poison.display_name = "backdoor-trigger";
    poison.payload_size = payload;
    return poison;
  }
};

// ---------------------------------------------------------------------------
// obfuscation (NEW): character-level mangling of the spammiest words.
// ---------------------------------------------------------------------------

using spambayes::verdict_at_most;

/// Character-level mangling: leet substitutions where possible, an
/// inserted '.' otherwise. Either way the result is a token the filter
/// has never trained on, so the word's spam evidence drops to the
/// unknown-word prior.
std::string mangle_word(const std::string& word, bool leet) {
  std::string out = word;
  bool changed = false;
  if (leet) {
    for (char& c : out) {
      switch (std::tolower(static_cast<unsigned char>(c))) {
        case 'a': c = '@'; changed = true; break;
        case 'e': c = '3'; changed = true; break;
        case 'i': c = '1'; changed = true; break;
        case 'o': c = '0'; changed = true; break;
        case 's': c = '$'; changed = true; break;
        default: break;
      }
    }
  }
  if (!changed && out.size() >= 2) {
    out.insert(out.begin() + static_cast<std::ptrdiff_t>(out.size() / 2), '.');
  }
  return out;
}

class ObfuscationAttack : public AttackBase {
 public:
  ObfuscationAttack()
      : AttackBase("obfuscation",
                   "mangle the spammiest words character-by-character until "
                   "the filter misses them",
                   "character-level attack family of Hotoğlu et al. "
                   "(arXiv:2505.03831)",
                   AttackProperties{Influence::exploratory,
                                    Violation::integrity,
                                    Specificity::targeted}) {
    schema_
        .add("mangle_per_query", ParamType::kUInt, "5",
             "words mangled between filter queries")
        .add("leet", ParamType::kBool, "true",
             "use leet substitutions (a->@, e->3, ...); false inserts "
             "punctuation instead");
  }

  EvadeResult evade(EvadeContext& ctx,
                    const email::Message& message) const override {
    EvadeResult result;
    result.message = message;

    const spambayes::ScoreResult initial = ctx.filter.classify(message);
    result.queries = 1;
    result.score_before = initial.score;
    result.score_after = initial.score;
    if (verdict_at_most(initial.verdict, ctx.goal)) {
      result.evaded = true;
      return result;
    }

    // Split the body into whitespace-separated chunks, remembering the
    // separators so the mangled body keeps the original layout. Chunks
    // alternate separator (even index, possibly empty first) and word
    // (odd index).
    const std::string& body = message.body();
    std::vector<std::string> chunks;
    chunks.emplace_back();
    bool in_word = false;
    for (char c : body) {
      const bool space = std::isspace(static_cast<unsigned char>(c)) != 0;
      if (space == in_word) {
        chunks.emplace_back();
        in_word = !space;
      }
      chunks.back().push_back(c);
    }

    // Rank word chunks by the filter's own per-token spam score,
    // spammiest first; ties break on position for determinism.
    const spambayes::Classifier& classifier = ctx.filter.classifier();
    const spambayes::TokenDatabase& db = ctx.filter.database();
    struct Candidate {
      std::size_t chunk;
      double score;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 1; i < chunks.size(); i += 2) {
      // Look up the spelling the filter actually trained on: the
      // tokenizer strips surrounding punctuation and lowercases, so
      // 'Viagra.' must rank by the score of token 'viagra', not by the
      // unknown-word prior of the raw chunk.
      const std::string_view word = spambayes::strip_punct(chunks[i]);
      if (word.size() < 3) continue;  // below the token-length floor
      std::string lowered(word);
      for (char& c : lowered) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      candidates.push_back({i, classifier.token_score(db, lowered)});
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.score > b.score;
                     });

    const bool leet = ctx.params.get_bool("leet");
    const std::size_t per_query = std::max<std::size_t>(
        1, static_cast<std::size_t>(ctx.params.get_uint("mangle_per_query")));
    const std::size_t limit = std::min(ctx.max_words, candidates.size());
    std::size_t next = 0;
    while (result.words_added < limit) {
      const std::size_t batch =
          std::min(per_query, limit - result.words_added);
      for (std::size_t i = 0; i < batch; ++i) {
        std::string& word = chunks[candidates[next++].chunk];
        word = mangle_word(word, leet);
      }
      result.words_added += batch;
      std::string mangled;
      mangled.reserve(body.size() + result.words_added);
      for (const auto& chunk : chunks) mangled += chunk;
      result.message.set_body(std::move(mangled));
      const spambayes::ScoreResult r = ctx.filter.classify(result.message);
      result.queries += 1;
      result.score_after = r.score;
      if (verdict_at_most(r.verdict, ctx.goal)) {
        result.evaded = true;
        return result;
      }
    }
    return result;
  }
};

}  // namespace

void register_builtin_attacks(AttackRegistry& registry) {
  registry.add(std::make_unique<AspellAttack>());
  registry.add(std::make_unique<UsenetAttack>());
  registry.add(std::make_unique<OptimalAttack>());
  registry.add(std::make_unique<InformedAttack>());
  registry.add(std::make_unique<FocusedAttackAdapter>());
  registry.add(std::make_unique<HamLabeledAttackAdapter>());
  registry.add(std::make_unique<GoodWordAttackAdapter>());
  registry.add(std::make_unique<BackdoorTriggerAttack>());
  registry.add(std::make_unique<ObfuscationAttack>());
}

}  // namespace sbx::core
