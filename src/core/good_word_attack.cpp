#include "core/good_word_attack.h"

#include "util/error.h"

namespace sbx::core {

using spambayes::verdict_at_most;

GoodWordAttack::GoodWordAttack(std::vector<std::string> candidate_words,
                               std::size_t batch_size)
    : candidates_(std::move(candidate_words)),
      batch_size_(batch_size == 0 ? 1 : batch_size) {
  if (candidates_.empty()) {
    throw InvalidArgument("GoodWordAttack: no candidate words");
  }
}

GoodWordAttack::Result GoodWordAttack::evade(const spambayes::Filter& filter,
                                             const email::Message& spam,
                                             std::size_t max_words,
                                             spambayes::Verdict goal) const {
  Result result;
  result.message = spam;

  spambayes::ScoreResult initial = filter.classify(result.message);
  result.queries = 1;
  result.score_before = initial.score;
  result.score_after = initial.score;
  if (verdict_at_most(initial.verdict, goal)) {
    result.evaded = true;  // nothing to do
    return result;
  }

  std::string padded_body = result.message.body();
  if (!padded_body.empty() && padded_body.back() != '\n') {
    padded_body.push_back('\n');
  }
  std::size_t next_candidate = 0;
  const std::size_t limit = std::min(max_words, candidates_.size());
  while (result.words_added < limit) {
    std::size_t batch =
        std::min(batch_size_, limit - result.words_added);
    for (std::size_t i = 0; i < batch; ++i) {
      padded_body += candidates_[next_candidate++];
      padded_body.push_back(i + 1 == batch ? '\n' : ' ');
    }
    result.words_added += batch;
    result.message.set_body(padded_body);
    spambayes::ScoreResult r = filter.classify(result.message);
    result.queries += 1;
    result.score_after = r.score;
    if (verdict_at_most(r.verdict, goal)) {
      result.evaded = true;
      return result;
    }
  }
  return result;
}

}  // namespace sbx::core
