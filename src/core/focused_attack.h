// sbx/core/focused_attack.h
//
// The paper's Targeted Causative Availability attack (§3.3): the attacker
// knows (part of) a specific future email and sends spam containing the
// words it expects that email to contain, so SpamBayes learns to score the
// target's tokens as spammy and files the target away from the inbox.
//
// Knowledge model (§4.3): the attacker guesses each token of the target
// correctly with probability p. One guess set is drawn per attack instance
// — the attacker's knowledge is fixed, and every attack email it sends
// carries that same payload. (Independent per-email guesses would converge
// to full knowledge as the email count grows, erasing the p-dependence that
// Figure 2 demonstrates; see DESIGN.md §5.)
//
// Headers: each attack email clones the full header block of a randomly
// chosen real spam message (§4.1), modelling the restriction that attackers
// do not control the headers the victim's infrastructure records.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/taxonomy.h"
#include "email/message.h"
#include "spambayes/tokenizer.h"
#include "util/random.h"

namespace sbx::core {

/// Parameters of the focused attack.
struct FocusedAttackConfig {
  /// Probability of correctly guessing each target token (Fig. 2 sweeps
  /// this over {0.1, 0.3, 0.5, 0.9}).
  double guess_probability = 0.5;

  /// Extra filler words appended to the payload from the attacker's own
  /// vocabulary (the paper notes attack emails "may include additional
  /// words as well"; the evaluated attacks use none).
  std::size_t extra_words = 0;

  /// When true, every attack email redraws its own guess set (ablation;
  /// the paper's model keeps one guess set per attack, see header comment).
  bool fresh_guess_per_email = false;
};

/// A focused attack instance bound to one target email.
class FocusedAttack {
 public:
  /// Binds the attack to a target. The guess set is drawn immediately from
  /// `rng` (unless fresh_guess_per_email). `target_tokens` should be the
  /// target's *body* word tokens — the attacker predicts content, not the
  /// victim's mail headers.
  FocusedAttack(FocusedAttackConfig config,
                spambayes::TokenSet target_body_words, util::Rng& rng);

  /// The tokens the attacker guessed (i.e. the payload of every attack
  /// email when fresh_guess_per_email is false).
  const std::vector<std::string>& guessed_words() const { return guessed_; }

  /// Generates `count` attack emails. Each clones the header block of a
  /// random message from `spam_header_pool` (must be non-empty) and carries
  /// the guessed payload as its body.
  std::vector<email::Message> generate(
      const std::vector<const email::Message*>& spam_header_pool,
      std::size_t count, util::Rng& rng) const;

  /// Causative / Availability / Targeted.
  static AttackProperties properties() {
    return {Influence::causative, Violation::availability,
            Specificity::targeted};
  }

  const FocusedAttackConfig& config() const { return config_; }

 private:
  std::vector<std::string> draw_guess(util::Rng& rng) const;

  FocusedAttackConfig config_;
  spambayes::TokenSet target_words_;
  std::vector<std::string> guessed_;
};

/// Extracts the plain body words of a message that a focused attacker can
/// guess and embed in its own attack bodies: word tokens only (no header
/// tokens, no skip:/url: pseudo-tokens).
spambayes::TokenSet attackable_body_words(const email::Message& msg,
                                          const spambayes::Tokenizer& tok);

}  // namespace sbx::core
