#include "core/attack.h"

#include "util/error.h"

namespace sbx::core {

std::vector<email::Message> Attack::craft_poison(CraftContext& ctx) const {
  const std::optional<CanonicalPoison> canonical =
      canonical_poison(ctx.generator, ctx.params, ctx.rng);
  if (!canonical.has_value()) {
    throw InvalidArgument("attack '" + name() +
                          "' does not craft poison (Exploratory-only; use "
                          "evade())");
  }
  std::vector<email::Message> out;
  out.reserve(ctx.count);
  for (std::size_t i = 0; i < ctx.count; ++i) {
    out.push_back(canonical->message);
  }
  return out;
}

std::optional<CanonicalPoison> Attack::canonical_poison(
    const corpus::TrecLikeGenerator&, const util::Config&, util::Rng&) const {
  return std::nullopt;
}

EvadeResult Attack::evade(EvadeContext&, const email::Message&) const {
  throw InvalidArgument("attack '" + name() +
                        "' does not evade (Causative-only; use "
                        "craft_poison())");
}

}  // namespace sbx::core
