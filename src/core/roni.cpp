#include "core/roni.h"

#include "util/error.h"

namespace sbx::core {

RoniDefense::RoniDefense(RoniConfig config,
                         spambayes::FilterOptions filter_options)
    : config_(config), filter_options_(filter_options) {
  if (config_.train_size == 0 || config_.validation_size == 0 ||
      config_.resamples == 0) {
    throw InvalidArgument("RoniDefense: sizes must be positive");
  }
}

RoniAssessment RoniDefense::assess(const spambayes::TokenIdSet& query_ids,
                                   const corpus::TokenizedDataset& pool,
                                   util::Rng& rng) const {
  const std::size_t needed = config_.train_size + config_.validation_size;
  if (pool.size() < needed) {
    throw InvalidArgument("RoniDefense::assess: pool smaller than |T| + |V|");
  }

  RoniAssessment out;
  out.per_trial.reserve(config_.resamples);
  std::vector<std::size_t> ham_validation;  // reused across trials
  for (std::size_t trial = 0; trial < config_.resamples; ++trial) {
    // Draw T and V disjointly.
    std::vector<std::size_t> idx =
        rng.sample_without_replacement(pool.size(), needed);
    spambayes::Filter filter(filter_options_);
    for (std::size_t i = 0; i < config_.train_size; ++i) {
      const auto& item = pool.items[idx[i]];
      if (item.label == corpus::TrueLabel::spam) {
        filter.train_spam_ids(item.ids);
      } else {
        filter.train_ham_ids(item.ids);
      }
    }

    // Only the ham share of V contributes to the metric; batch-classify
    // exactly those messages (before and after the query is grafted on).
    ham_validation.clear();
    for (std::size_t i = config_.train_size; i < needed; ++i) {
      if (pool.items[idx[i]].label == corpus::TrueLabel::ham) {
        ham_validation.push_back(idx[i]);
      }
    }
    auto ham_as_ham = [&](const spambayes::Filter& f) {
      std::size_t correct = 0;
      f.classify_batch(
          ham_validation.size(),
          [&](std::size_t i) -> const spambayes::TokenIdList& {
            return pool.items[ham_validation[i]].ids;
          },
          [&](std::size_t, const spambayes::BatchScore& scored) {
            if (scored.verdict == spambayes::Verdict::ham) ++correct;
          });
      return correct;
    };

    const std::size_t before = ham_as_ham(filter);
    filter.train_spam_ids(query_ids);
    const std::size_t after = ham_as_ham(filter);
    out.per_trial.push_back(static_cast<double>(before) -
                            static_cast<double>(after));
  }

  double sum = 0;
  for (double d : out.per_trial) sum += d;
  out.mean_ham_as_ham_decrease =
      sum / static_cast<double>(out.per_trial.size());
  out.rejected = out.mean_ham_as_ham_decrease > config_.rejection_threshold;
  return out;
}

RoniAssessment RoniDefense::assess(const spambayes::TokenSet& query_tokens,
                                   const corpus::TokenizedDataset& pool,
                                   util::Rng& rng) const {
  return assess(spambayes::intern_tokens(query_tokens), pool, rng);
}

}  // namespace sbx::core
