#include "core/focused_attack.h"

#include "email/builder.h"
#include "email/mime.h"
#include "util/error.h"

namespace sbx::core {

FocusedAttack::FocusedAttack(FocusedAttackConfig config,
                             spambayes::TokenSet target_body_words,
                             util::Rng& rng)
    : config_(config), target_words_(std::move(target_body_words)) {
  if (config_.guess_probability < 0.0 || config_.guess_probability > 1.0) {
    throw InvalidArgument("FocusedAttack: guess_probability outside [0,1]");
  }
  if (target_words_.empty()) {
    throw InvalidArgument("FocusedAttack: target has no attackable words");
  }
  if (!config_.fresh_guess_per_email) {
    guessed_ = draw_guess(rng);
  }
}

std::vector<std::string> FocusedAttack::draw_guess(util::Rng& rng) const {
  std::vector<std::string> out;
  out.reserve(target_words_.size() + config_.extra_words);
  for (const auto& w : target_words_) {
    if (rng.bernoulli(config_.guess_probability)) out.push_back(w);
  }
  // §3.3: "the attack email may include additional words as well" — e.g.
  // cover text making the message look like ordinary spam. The filler
  // tokens come from a reserved namespace disjoint from the corpus
  // vocabulary, so they add spam-trained mass without touching the target
  // (by §3.4's independence, they cannot weaken the attack).
  for (std::size_t i = 0; i < config_.extra_words; ++i) {
    out.push_back("xfiller" + std::to_string(rng.index(10'000)));
  }
  // An attack email must have *some* body; with very low p the attacker may
  // guess nothing, in which case it sends a minimal junk payload (the
  // attack is simply ineffective, as the paper's p=0.1 bars show).
  if (out.empty()) out.push_back("regards");
  return out;
}

std::vector<email::Message> FocusedAttack::generate(
    const std::vector<const email::Message*>& spam_header_pool,
    std::size_t count, util::Rng& rng) const {
  if (spam_header_pool.empty()) {
    throw InvalidArgument("FocusedAttack::generate: empty header pool");
  }
  std::vector<email::Message> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const email::Message* donor =
        spam_header_pool[rng.index(spam_header_pool.size())];
    email::Message msg;
    msg.set_headers(donor->headers());
    // The donor's MIME framing must not survive: the attack body is plain
    // text, so a cloned Content-Type (e.g. multipart boundary) would hide
    // the payload from the tokenizer.
    msg.remove_headers("Content-Type");
    msg.remove_headers("Content-Transfer-Encoding");
    const std::vector<std::string>& payload =
        config_.fresh_guess_per_email ? draw_guess(rng) : guessed_;
    email::Message body_holder =
        email::MessageBuilder().body_from_words(payload).build();
    msg.set_body(body_holder.body());
    out.push_back(std::move(msg));
  }
  return out;
}

spambayes::TokenSet attackable_body_words(const email::Message& msg,
                                          const spambayes::Tokenizer& tok) {
  spambayes::TokenList raw = tok.tokenize_text(email::extract_text(msg));
  spambayes::TokenList plain;
  plain.reserve(raw.size());
  for (auto& t : raw) {
    // Skip pseudo-tokens: the attacker writes words into a body, so only
    // tokens that re-tokenize to themselves are usable.
    if (t.rfind("skip:", 0) == 0 || t.rfind("url:", 0) == 0) continue;
    plain.push_back(std::move(t));
  }
  return spambayes::unique_tokens(plain);
}

}  // namespace sbx::core
