// sbx/core/good_word_attack.h
//
// An Exploratory Integrity attack — the taxonomy quadrant the paper
// contrasts its Causative attacks against (§3.1, §6: Lowd & Meek's "good
// word attacks", Wittel & Wu's common-word padding). The attacker does NOT
// touch training; it appends words likely to look hammy to a spam message
// until the (fixed) filter no longer files it as spam.
//
// Implemented black-box: the attacker can submit messages and observe the
// filter's verdict/score (Lowd-Meek's membership-query model), padding its
// message in batches until the goal verdict is reached or the word budget
// is exhausted. Included both for taxonomy completeness and as the
// comparison bench (bench_ext_good_words) showing why the paper's
// causative attacks are the stronger threat: evasion helps one message
// through, poisoning breaks the filter for everyone.
#pragma once

#include <cstddef>
#include <vector>

#include "core/taxonomy.h"
#include "email/message.h"
#include "spambayes/filter.h"

namespace sbx::core {

/// Black-box good-word evasion.
class GoodWordAttack {
 public:
  /// `candidate_words`: words the attacker believes look legitimate, in
  /// the order it will try them (e.g. common English words). `batch_size`:
  /// how many words are appended between filter queries.
  explicit GoodWordAttack(std::vector<std::string> candidate_words,
                          std::size_t batch_size = 10);

  struct Result {
    email::Message message;        // the (possibly padded) spam
    std::size_t words_added = 0;
    std::size_t queries = 0;       // filter queries spent
    double score_before = 1.0;
    double score_after = 1.0;
    bool evaded = false;           // reached the goal verdict
  };

  /// Pads `spam` with candidate words until the filter's verdict is at
  /// most `goal` (unsure by default — out of the spam folder), the
  /// candidate list is exhausted, or `max_words` have been added.
  Result evade(const spambayes::Filter& filter, const email::Message& spam,
               std::size_t max_words,
               spambayes::Verdict goal = spambayes::Verdict::unsure) const;

  /// Exploratory / Integrity / Targeted.
  static AttackProperties properties() {
    return {Influence::exploratory, Violation::integrity,
            Specificity::targeted};
  }

 private:
  std::vector<std::string> candidates_;
  std::size_t batch_size_;
};

}  // namespace sbx::core
