#include "core/attack_registry.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace sbx::core {

void AttackRegistry::add(std::unique_ptr<Attack> attack) {
  if (find(attack->name()) != nullptr) {
    throw InvalidArgument("AttackRegistry::add: duplicate attack '" +
                          attack->name() + "'");
  }
  attacks_.push_back(std::move(attack));
}

const Attack* AttackRegistry::find(std::string_view name) const {
  for (const auto& attack : attacks_) {
    if (attack->name() == name) return attack.get();
  }
  return nullptr;
}

const Attack& AttackRegistry::get(std::string_view name) const {
  const Attack* attack = find(name);
  if (attack == nullptr) {
    std::vector<std::string> known;
    for (const Attack* a : attacks()) known.push_back(a->name());
    throw InvalidArgument(util::unknown_name_message("attack", name, known));
  }
  return *attack;
}

std::vector<const Attack*> AttackRegistry::attacks() const {
  std::vector<const Attack*> out;
  out.reserve(attacks_.size());
  for (const auto& attack : attacks_) out.push_back(attack.get());
  std::sort(out.begin(), out.end(), [](const Attack* a, const Attack* b) {
    return a->name() < b->name();
  });
  return out;
}

const AttackRegistry& builtin_attack_registry() {
  static const AttackRegistry* registry = [] {
    auto* r = new AttackRegistry();
    register_builtin_attacks(*r);
    return r;
  }();
  return *registry;
}

}  // namespace sbx::core
