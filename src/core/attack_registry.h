// sbx/core/attack_registry.h
//
// Name -> Attack lookup, mirroring eval's experiment registry (PR 3).
// The registry is the single attack catalogue behind `sbx_experiments
// attacks list/describe`, the attack-parametric experiments
// (attack=<name> config keys) and the sweep attack axis.
//
// Built-in attacks are registered explicitly (register_builtin_attacks(),
// not static initializers: sbx is consumed as static libraries, where
// unreferenced self-registering objects are silently dropped by the
// linker — the same rationale as eval::register_builtin_experiments).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/attack.h"

namespace sbx::core {

class AttackRegistry {
 public:
  AttackRegistry() = default;
  AttackRegistry(const AttackRegistry&) = delete;
  AttackRegistry& operator=(const AttackRegistry&) = delete;

  /// Registers an attack; throws sbx::InvalidArgument on duplicate names.
  void add(std::unique_ptr<Attack> attack);

  /// nullptr when no attack has this name.
  const Attack* find(std::string_view name) const;

  /// Lookup that throws sbx::InvalidArgument listing the known names.
  const Attack& get(std::string_view name) const;

  /// All attacks, sorted by name.
  std::vector<const Attack*> attacks() const;

 private:
  std::vector<std::unique_ptr<Attack>> attacks_;
};

/// The process-wide registry holding every built-in attack: the five
/// ported classes (dictionary family as aspell/usenet/optimal/informed,
/// focused, good-word, ham-labeled) plus the backdoor-trigger and
/// obfuscation extensions. Thread-safe: built once on first use.
const AttackRegistry& builtin_attack_registry();

/// Registers the built-in attacks into `registry` (exposed for tests that
/// assemble their own registries).
void register_builtin_attacks(AttackRegistry& registry);

}  // namespace sbx::core
