#include "corpus/vocabulary.h"

#include <array>

#include "util/error.h"

namespace sbx::corpus {
namespace {

// Syllable inventory. 20 onsets x 6 vowels x 10 codas = 1200 distinct
// syllables; 2-3 syllables per word cover > 1200^3 combinations, far more
// than the ~130k words we need.
// Chosen so that coda+onset consonant clusters parse uniquely (e.g. no
// onset "st", which would make "...s|t..." vs "...|st..." ambiguous and
// allow two index pairs to produce the same concatenated word).
constexpr std::array<const char*, 20> kOnsets = {
    "b", "d", "f", "g", "h", "k", "l", "m",  "n",  "p",
    "r", "s", "t", "v", "w", "z", "ch", "j", "br", "pl"};
constexpr std::array<const char*, 6> kVowels = {"a", "e", "i", "o", "u", "ai"};
constexpr std::array<const char*, 10> kCodas = {"", "n", "r", "s",  "t",
                                                "l", "m", "d", "ck", "sh"};

constexpr std::uint64_t kSyllables =
    kOnsets.size() * kVowels.size() * kCodas.size();  // 1200

std::string syllable(std::uint64_t index) {
  std::uint64_t onset = index % kOnsets.size();
  index /= kOnsets.size();
  std::uint64_t vowel = index % kVowels.size();
  index /= kVowels.size();
  std::uint64_t coda = index % kCodas.size();
  std::string s = kOnsets[onset];
  s += kVowels[vowel];
  s += kCodas[coda];
  return s;
}

}  // namespace

std::string WordGenerator::word(std::uint64_t index) {
  // Two-syllable words for the first 1200^2 indices, three-syllable after.
  // The syllable decomposition of the index is unique, so words collide only
  // if a 2-syllable word equals another 2-syllable word, which cannot happen
  // because the (onset, vowel, coda) decomposition of each half is unique
  // and unambiguous in this inventory... except that string concatenation
  // could theoretically align differently; we sidestep ambiguity by joining
  // the two syllables as-is (inventory chosen so that resegmentation yields
  // the same pair: onsets never end with a vowel and codas never start with
  // one). Empirically verified distinct in tests over the full range used.
  if (index < kSyllables * kSyllables) {
    return syllable(index / kSyllables) + syllable(index % kSyllables);
  }
  std::uint64_t rest = index - kSyllables * kSyllables;
  std::uint64_t a = rest / (kSyllables * kSyllables);
  std::uint64_t b = (rest / kSyllables) % kSyllables;
  std::uint64_t c = rest % kSyllables;
  return syllable(a) + syllable(b) + syllable(c);
}

std::string WordGenerator::colloquial_word(std::uint64_t index) {
  // Colloquial words come from a compact q-marked syllable space. No formal
  // word contains the letter 'q' (the syllable inventory above has none),
  // so the colloquial lexicon is disjoint from the Aspell-like lexicon by
  // construction. Lengths stay within [5, 7] characters, comfortably inside
  // the tokenizer's [3, 12] window, so these words always tokenize to
  // themselves.
  constexpr std::array<const char*, 16> kSimpleOnsets = {
      "b", "d", "f", "g", "h", "k", "l", "m",
      "n", "p", "r", "s", "t", "v", "w", "z"};
  constexpr std::array<const char*, 5> kSimpleVowels = {"a", "e", "i", "o",
                                                        "u"};
  constexpr std::array<const char*, 8> kSimpleCodas = {"",  "n", "r", "s",
                                                       "t", "l", "m", "d"};
  constexpr std::uint64_t kCompact =
      kSimpleOnsets.size() * kSimpleVowels.size() * kSimpleCodas.size();
  auto compact_syllable = [&](std::uint64_t i) {
    std::uint64_t onset = i % kSimpleOnsets.size();
    i /= kSimpleOnsets.size();
    std::uint64_t vowel = i % kSimpleVowels.size();
    i /= kSimpleVowels.size();
    std::uint64_t coda = i % kSimpleCodas.size();
    std::string s = kSimpleOnsets[onset];
    s += kSimpleVowels[vowel];
    s += kSimpleCodas[coda];
    return s;
  };
  if (index >= kCompact * kCompact) {
    throw InvalidArgument("colloquial_word: index out of range");
  }
  return "q" + compact_syllable(index / kCompact) +
         compact_syllable(index % kCompact);
}

Lexicons::Lexicons(const LexiconSizes& sizes) : sizes_(sizes) {
  if (sizes_.overlap > sizes_.aspell || sizes_.overlap > sizes_.usenet) {
    throw InvalidArgument("Lexicons: overlap exceeds lexicon size");
  }
  aspell_.reserve(sizes_.aspell);
  for (std::size_t i = 0; i < sizes_.aspell; ++i) {
    aspell_.push_back(WordGenerator::word(i));
  }
  aspell_set_.reserve(aspell_.size() * 2);
  aspell_set_.insert(aspell_.begin(), aspell_.end());

  const std::size_t colloquial_count = sizes_.usenet - sizes_.overlap;
  colloquial_.reserve(colloquial_count);
  for (std::size_t i = 0; i < colloquial_count; ++i) {
    colloquial_.push_back(WordGenerator::colloquial_word(i));
  }

  // Usenet ranking: interleave the shared formal words (the front of the
  // Aspell list — the common region ham actually uses) with colloquial
  // words, mirroring how slang ranks highly in a real Usenet frequency
  // list.
  usenet_.reserve(sizes_.usenet);
  std::size_t fi = 0;
  std::size_t ci = 0;
  while (usenet_.size() < sizes_.usenet) {
    // Keep the shared:colloquial ratio ~ overlap:(usenet-overlap)
    // throughout the ranking.
    bool take_formal =
        (fi * (sizes_.usenet - sizes_.overlap) <= ci * sizes_.overlap);
    if (take_formal && fi < sizes_.overlap) {
      usenet_.push_back(aspell_[fi++]);
    } else if (ci < colloquial_count) {
      usenet_.push_back(colloquial_[ci++]);
    } else {
      usenet_.push_back(aspell_[fi++]);
    }
  }
}

}  // namespace sbx::corpus
