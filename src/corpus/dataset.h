// sbx/corpus/dataset.h
//
// Labeled datasets and the K-fold cross-validation split used throughout
// the paper's evaluation (§4.1): partition into K subsets, train on K-1 and
// test on the held-out fold, so every email serves as both training and
// test data.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "email/message.h"
#include "spambayes/tokenizer.h"
#include "util/random.h"

namespace sbx::corpus {

/// Ground-truth label of a corpus message.
enum class TrueLabel { ham, spam };

/// Human-readable label name.
std::string_view to_string(TrueLabel label);

/// One corpus email with its ground truth.
struct LabeledMessage {
  email::Message message;
  TrueLabel label = TrueLabel::ham;
};

/// A labeled corpus sample.
struct Dataset {
  std::vector<LabeledMessage> items;

  std::size_t size() const { return items.size(); }
  std::size_t count(TrueLabel label) const;
};

/// A corpus message reduced to its deduplicated token set — the form the
/// evaluation harness uses so each message is tokenized exactly once. The
/// interned `ids` are the hot-path representation (train/untrain/classify);
/// the string `tokens` are kept for reporting and legacy callers.
struct TokenizedMessage {
  spambayes::TokenSet tokens;
  spambayes::TokenIdSet ids;
  TrueLabel label = TrueLabel::ham;

  TokenizedMessage() = default;
  TokenizedMessage(spambayes::TokenSet tokens_in, TrueLabel label_in);
  TokenizedMessage(spambayes::TokenIdSet ids_in, TrueLabel label_in);
};

/// Tokenized view of a Dataset.
struct TokenizedDataset {
  std::vector<TokenizedMessage> items;
  /// Raw (with duplicates) token count over every message — the §4.2
  /// token-ratio denominator, collected in the same pass as tokenization.
  std::size_t raw_tokens = 0;

  std::size_t size() const { return items.size(); }
  std::size_t count(TrueLabel label) const;
};

/// Tokenizes every message with the given tokenizer (one pass per message;
/// fills both the string sets, the interned id sets and raw_tokens).
TokenizedDataset tokenize_dataset(const Dataset& dataset,
                                  const spambayes::Tokenizer& tokenizer);

/// One train/test split: indices into the dataset.
struct FoldSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Produces K cross-validation splits of [0, size). Indices are shuffled
/// with `rng` first, then dealt round-robin so fold sizes differ by at most
/// one. Throws InvalidArgument if k < 2 or k > size.
std::vector<FoldSplit> k_fold_splits(std::size_t size, std::size_t k,
                                     util::Rng& rng);

}  // namespace sbx::corpus
