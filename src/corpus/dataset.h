// sbx/corpus/dataset.h
//
// Labeled datasets and the K-fold cross-validation split used throughout
// the paper's evaluation (§4.1): partition into K subsets, train on K-1 and
// test on the held-out fold, so every email serves as both training and
// test data.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "email/message.h"
#include "spambayes/tokenizer.h"
#include "util/random.h"

namespace sbx::corpus {

/// Ground-truth label of a corpus message.
enum class TrueLabel { ham, spam };

/// Human-readable label name.
std::string_view to_string(TrueLabel label);

/// One corpus email with its ground truth.
struct LabeledMessage {
  email::Message message;
  TrueLabel label = TrueLabel::ham;
};

/// A labeled corpus sample.
struct Dataset {
  std::vector<LabeledMessage> items;

  std::size_t size() const { return items.size(); }
  std::size_t count(TrueLabel label) const;
};

/// A corpus message reduced to its deduplicated token set — the form the
/// evaluation harness uses so each message is tokenized exactly once.
struct TokenizedMessage {
  spambayes::TokenSet tokens;
  TrueLabel label = TrueLabel::ham;
};

/// Tokenized view of a Dataset.
struct TokenizedDataset {
  std::vector<TokenizedMessage> items;

  std::size_t size() const { return items.size(); }
  std::size_t count(TrueLabel label) const;
};

/// Tokenizes every message with the given tokenizer.
TokenizedDataset tokenize_dataset(const Dataset& dataset,
                                  const spambayes::Tokenizer& tokenizer);

/// One train/test split: indices into the dataset.
struct FoldSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Produces K cross-validation splits of [0, size). Indices are shuffled
/// with `rng` first, then dealt round-robin so fold sizes differ by at most
/// one. Throws InvalidArgument if k < 2 or k > size.
std::vector<FoldSplit> k_fold_splits(std::size_t size, std::size_t k,
                                     util::Rng& rng);

}  // namespace sbx::corpus
