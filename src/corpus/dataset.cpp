#include "corpus/dataset.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace sbx::corpus {

std::string_view to_string(TrueLabel label) {
  return label == TrueLabel::ham ? "ham" : "spam";
}

std::size_t Dataset::count(TrueLabel label) const {
  return static_cast<std::size_t>(
      std::count_if(items.begin(), items.end(),
                    [label](const LabeledMessage& m) {
                      return m.label == label;
                    }));
}

std::size_t TokenizedDataset::count(TrueLabel label) const {
  return static_cast<std::size_t>(
      std::count_if(items.begin(), items.end(),
                    [label](const TokenizedMessage& m) {
                      return m.label == label;
                    }));
}

TokenizedMessage::TokenizedMessage(spambayes::TokenSet tokens_in,
                                   TrueLabel label_in)
    : tokens(std::move(tokens_in)),
      ids(spambayes::intern_tokens(tokens)),
      label(label_in) {}

TokenizedMessage::TokenizedMessage(spambayes::TokenIdSet ids_in,
                                   TrueLabel label_in)
    : ids(std::move(ids_in)), label(label_in) {}

TokenizedDataset tokenize_dataset(const Dataset& dataset,
                                  const spambayes::Tokenizer& tokenizer) {
  TokenizedDataset out;
  out.items.reserve(dataset.items.size());
  for (const auto& item : dataset.items) {
    const spambayes::TokenList raw = tokenizer.tokenize(item.message);
    out.raw_tokens += raw.size();
    out.items.emplace_back(spambayes::unique_tokens(raw), item.label);
  }
  return out;
}

std::vector<FoldSplit> k_fold_splits(std::size_t size, std::size_t k,
                                     util::Rng& rng) {
  if (k < 2) throw InvalidArgument("k_fold_splits: k < 2");
  if (k > size) throw InvalidArgument("k_fold_splits: k > dataset size");
  std::vector<std::size_t> order(size);
  for (std::size_t i = 0; i < size; ++i) order[i] = i;
  rng.shuffle(order);

  std::vector<FoldSplit> folds(k);
  for (std::size_t i = 0; i < size; ++i) {
    folds[i % k].test.push_back(order[i]);
  }
  for (std::size_t f = 0; f < k; ++f) {
    auto& split = folds[f];
    split.train.reserve(size - split.test.size());
    for (std::size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      split.train.insert(split.train.end(), folds[g].test.begin(),
                         folds[g].test.end());
    }
  }
  return folds;
}

}  // namespace sbx::corpus
