#include "corpus/generator.h"

#include <algorithm>
#include <cmath>

#include "email/builder.h"
#include "util/error.h"

namespace sbx::corpus {
namespace {

constexpr std::uint64_t kFirstNameBase = 150'000;
constexpr std::uint64_t kLastNameBase = 160'000;
constexpr std::uint64_t kCompanyBase = 170'000;
constexpr std::uint64_t kSpamDomainBase = 180'000;
constexpr std::uint64_t kJunkBase = 50'000;  // colloquial index space

std::string junk_word(std::uint64_t index) {
  // Obfuscated spam token ("v1agra"-style): a q-space word with the marker
  // replaced by a digit. Starts with a digit, so it is disjoint from both
  // the formal lexicon (no digits) and the colloquial lexicon (starts 'q').
  std::string w = WordGenerator::colloquial_word(kJunkBase + index);
  w[0] = static_cast<char>('0' + index % 10);
  return w;
}

}  // namespace

struct TrecLikeGenerator::Impl {
  explicit Impl(const GeneratorConfig& cfg)
      : lexicons(cfg.lexicon_sizes),
        ham_core_dist(cfg.ham_core_vocab, cfg.zipf_exponent, cfg.zipf_offset),
        colloquial_dist(cfg.ham_colloquial_vocab, cfg.zipf_exponent,
                        cfg.zipf_offset),
        spam_dist(cfg.spam_vocab, cfg.zipf_exponent, cfg.zipf_offset),
        junk_dist(cfg.spam_junk_vocab, cfg.zipf_exponent, cfg.zipf_offset) {
    if (cfg.ham_core_vocab > cfg.lexicon_sizes.overlap) {
      throw InvalidArgument(
          "GeneratorConfig: ham_core_vocab must fit in the Aspell/Usenet "
          "overlap");
    }
    if (cfg.ham_colloquial_vocab > lexicons.colloquial().size()) {
      throw InvalidArgument(
          "GeneratorConfig: ham_colloquial_vocab exceeds colloquial lexicon");
    }
    if (cfg.lexicon_sizes.overlap + cfg.spam_vocab >
        cfg.lexicon_sizes.aspell) {
      throw InvalidArgument(
          "GeneratorConfig: spam_vocab does not fit outside the overlap "
          "region");
    }
    // Ham core: the front of the Aspell list, which is inside the Usenet
    // overlap — common formal words. Spam vocabulary: formal words past the
    // overlap (in Aspell but not Usenet).
    ham_core.assign(lexicons.aspell().begin(),
                    lexicons.aspell().begin() +
                        static_cast<std::ptrdiff_t>(cfg.ham_core_vocab));
    ham_colloquial.assign(
        lexicons.colloquial().begin(),
        lexicons.colloquial().begin() +
            static_cast<std::ptrdiff_t>(cfg.ham_colloquial_vocab));
    spam_vocab.assign(
        lexicons.aspell().begin() +
            static_cast<std::ptrdiff_t>(cfg.lexicon_sizes.overlap),
        lexicons.aspell().begin() +
            static_cast<std::ptrdiff_t>(cfg.lexicon_sizes.overlap +
                                        cfg.spam_vocab));
    junk.reserve(cfg.spam_junk_vocab);
    for (std::size_t i = 0; i < cfg.spam_junk_vocab; ++i) {
      junk.push_back(junk_word(i));
    }
    first_names.reserve(cfg.first_name_pool);
    for (std::size_t i = 0; i < cfg.first_name_pool; ++i) {
      first_names.push_back(WordGenerator::word(kFirstNameBase + i));
    }
    last_names.reserve(cfg.last_name_pool);
    for (std::size_t i = 0; i < cfg.last_name_pool; ++i) {
      last_names.push_back(WordGenerator::word(kLastNameBase + i));
    }
    companies.reserve(cfg.company_pool);
    for (std::size_t i = 0; i < cfg.company_pool; ++i) {
      companies.push_back(WordGenerator::word(kCompanyBase + i));
    }
    spam_domains.reserve(cfg.spam_domain_pool);
    for (std::size_t i = 0; i < cfg.spam_domain_pool; ++i) {
      spam_domains.push_back(WordGenerator::word(kSpamDomainBase + i));
    }
  }

  Lexicons lexicons;
  util::ZipfSampler ham_core_dist;
  util::ZipfSampler colloquial_dist;
  util::ZipfSampler spam_dist;
  util::ZipfSampler junk_dist;

  std::vector<std::string> ham_core;
  std::vector<std::string> ham_colloquial;
  std::vector<std::string> spam_vocab;
  std::vector<std::string> junk;
  std::vector<std::string> first_names;
  std::vector<std::string> last_names;
  std::vector<std::string> companies;
  std::vector<std::string> spam_domains;
};

TrecLikeGenerator::TrecLikeGenerator(GeneratorConfig config)
    : config_(config), impl_(std::make_unique<Impl>(config)) {}

TrecLikeGenerator::~TrecLikeGenerator() = default;

const Lexicons& TrecLikeGenerator::lexicons() const { return impl_->lexicons; }

const std::vector<std::string>& TrecLikeGenerator::ham_core_words() const {
  return impl_->ham_core;
}

const std::vector<std::string>& TrecLikeGenerator::ham_colloquial_words()
    const {
  return impl_->ham_colloquial;
}

const std::vector<std::string>& TrecLikeGenerator::spam_vocab_words() const {
  return impl_->spam_vocab;
}

const std::vector<std::string>& TrecLikeGenerator::spam_junk_words() const {
  return impl_->junk;
}

std::vector<TrecLikeGenerator::WordProbability>
TrecLikeGenerator::ham_word_distribution() const {
  const Impl& im = *impl_;
  const GeneratorConfig& cfg = config_;
  const double w_core = 1.0 - cfg.ham_colloquial_weight -
                        cfg.ham_name_weight - cfg.ham_number_weight -
                        cfg.ham_url_weight;
  std::vector<WordProbability> dist;
  dist.reserve(im.ham_core.size() + im.ham_colloquial.size() +
               im.first_names.size() + im.last_names.size() +
               im.companies.size());
  for (std::size_t i = 0; i < im.ham_core.size(); ++i) {
    dist.push_back({im.ham_core[i], w_core * im.ham_core_dist.probability(i)});
  }
  for (std::size_t i = 0; i < im.ham_colloquial.size(); ++i) {
    dist.push_back({im.ham_colloquial[i],
                    cfg.ham_colloquial_weight *
                        im.colloquial_dist.probability(i)});
  }
  // Name mentions: 70% people (split between first/last), 30% companies,
  // uniform within each pool (matching generate_ham's sampling).
  const double person_each =
      cfg.ham_name_weight * 0.7 * 0.5 /
      static_cast<double>(im.first_names.size());
  for (const auto& w : im.first_names) dist.push_back({w, person_each});
  const double last_each = cfg.ham_name_weight * 0.7 * 0.5 /
                           static_cast<double>(im.last_names.size());
  for (const auto& w : im.last_names) dist.push_back({w, last_each});
  const double company_each = cfg.ham_name_weight * 0.3 /
                              static_cast<double>(im.companies.size());
  for (const auto& w : im.companies) dist.push_back({w, company_each});
  return dist;
}

namespace {

// Shared helpers for body assembly.

std::size_t body_length(const GeneratorConfig& cfg, util::Rng& rng) {
  double draw = rng.log_normal(cfg.body_log_mean, cfg.body_log_sigma);
  auto n = static_cast<std::size_t>(draw);
  return std::clamp(n, cfg.min_body_tokens, cfg.max_body_tokens);
}

std::string random_number_token(util::Rng& rng, bool money) {
  std::string out;
  if (money) out = "$";
  out += std::to_string(rng.uniform_int(10, 999'999));
  return out;
}

std::string random_date_header(util::Rng& rng) {
  static const char* kDays[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat",
                                "Sun"};
  static const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                  "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s, %d %s 2005 %02d:%02d:%02d -0800",
                kDays[rng.index(7)], static_cast<int>(rng.uniform_int(1, 28)),
                kMonths[rng.index(12)],
                static_cast<int>(rng.uniform_int(0, 23)),
                static_cast<int>(rng.uniform_int(0, 59)),
                static_cast<int>(rng.uniform_int(0, 59)));
  return buf;
}

std::string random_message_id(util::Rng& rng, const std::string& domain) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    (static_cast<std::uint64_t>(rng()) << 32) | rng()));
  return "<" + std::string(buf) + "@" + domain + ">";
}

// Appends tokens to a body with line breaks and light punctuation so the
// rendered mail looks like text rather than a word list.
class BodyWriter {
 public:
  explicit BodyWriter(std::string& out) : out_(out) {}

  void add(const std::string& token, util::Rng& rng) {
    out_ += token;
    ++count_;
    if (count_ % 12 == 0) {
      out_ += '\n';
    } else if (rng.bernoulli(0.08)) {
      out_ += ". ";
    } else {
      out_ += ' ';
    }
  }

 private:
  std::string& out_;
  std::size_t count_ = 0;
};

}  // namespace

email::Message TrecLikeGenerator::generate_ham(util::Rng& rng) const {
  const Impl& im = *impl_;
  const GeneratorConfig& cfg = config_;

  auto sample_person = [&](util::Rng& r) {
    return im.first_names[r.index(im.first_names.size())] + "." +
           im.last_names[r.index(im.last_names.size())];
  };
  const std::string& company = im.companies[rng.index(im.companies.size())];
  std::string domain = company + ".example";
  std::string from = sample_person(rng) + "@" + domain;
  std::string to = sample_person(rng) + "@" + domain;

  // Subject: 3-8 words from the ham word mixture (no numbers).
  std::string subject;
  std::size_t subject_len = static_cast<std::size_t>(rng.uniform_int(3, 8));
  for (std::size_t i = 0; i < subject_len; ++i) {
    if (i > 0) subject += ' ';
    subject += rng.bernoulli(cfg.ham_colloquial_weight)
                   ? im.ham_colloquial[im.colloquial_dist.sample(rng)]
                   : im.ham_core[im.ham_core_dist.sample(rng)];
  }

  // Body mixture.
  std::string body;
  body.reserve(2048);
  BodyWriter writer(body);
  const std::size_t length = body_length(cfg, rng);
  const double w_colloquial = cfg.ham_colloquial_weight;
  const double w_name = w_colloquial + cfg.ham_name_weight;
  const double w_number = w_name + cfg.ham_number_weight;
  const double w_url = w_number + cfg.ham_url_weight;
  for (std::size_t i = 0; i < length; ++i) {
    double roll = rng.uniform();
    if (roll < w_colloquial) {
      writer.add(im.ham_colloquial[im.colloquial_dist.sample(rng)], rng);
    } else if (roll < w_name) {
      bool person = rng.bernoulli(0.7);
      writer.add(person ? (rng.bernoulli(0.5)
                               ? im.first_names[rng.index(im.first_names.size())]
                               : im.last_names[rng.index(im.last_names.size())])
                        : im.companies[rng.index(im.companies.size())],
                 rng);
    } else if (roll < w_number) {
      writer.add(random_number_token(rng, /*money=*/rng.bernoulli(0.2)), rng);
    } else if (roll < w_url) {
      writer.add("http://" + domain + "/" +
                     im.ham_core[im.ham_core_dist.sample(rng)],
                 rng);
    } else {
      writer.add(im.ham_core[im.ham_core_dist.sample(rng)], rng);
    }
  }
  body += "\n";

  return email::MessageBuilder()
      .from(from)
      .to(to)
      .subject(subject)
      .date(random_date_header(rng))
      .message_id(random_message_id(rng, domain))
      .body(std::move(body))
      .build();
}

email::Message TrecLikeGenerator::generate_spam(util::Rng& rng) const {
  const Impl& im = *impl_;
  const GeneratorConfig& cfg = config_;

  const std::string& domain_word =
      im.spam_domains[rng.index(im.spam_domains.size())];
  std::string domain = domain_word + ".example";
  std::string from = im.first_names[rng.index(im.first_names.size())] + "@" +
                     domain;
  std::string to = im.first_names[rng.index(im.first_names.size())] + "." +
                   im.last_names[rng.index(im.last_names.size())] +
                   "@" + im.companies[rng.index(im.companies.size())] +
                   ".example";

  // Real spam subjects mimic legitimate mail ("RE: your account"), so a
  // configurable share of subject words comes from ordinary English.
  std::string subject;
  std::size_t subject_len = static_cast<std::size_t>(rng.uniform_int(3, 7));
  for (std::size_t i = 0; i < subject_len; ++i) {
    if (i > 0) subject += ' ';
    subject += rng.bernoulli(cfg.spam_subject_ham_word_prob)
                   ? im.ham_core[im.ham_core_dist.sample(rng)]
                   : im.spam_vocab[im.spam_dist.sample(rng)];
  }
  if (rng.bernoulli(0.5)) subject += "!!!";

  // "Hard" spam (plain-text scams) carries mostly ordinary English and
  // scores near the decision boundary, like the difficult tail of TREC.
  const bool hard = rng.bernoulli(cfg.hard_spam_fraction);

  std::string body;
  body.reserve(2048);
  BodyWriter writer(body);
  const std::size_t length = body_length(cfg, rng);
  const double w_background = hard ? 0.78 : cfg.spam_background_weight;
  const double w_colloquial =
      w_background + (hard ? 0.05 : cfg.spam_colloquial_weight);
  const double w_junk = w_colloquial + (hard ? 0.0 : cfg.spam_junk_weight);
  const double w_url = w_junk + (hard ? 0.02 : cfg.spam_url_weight);
  const double w_number =
      w_url + (hard ? 0.05 : cfg.spam_number_weight);
  const double w_name = w_number + (hard ? 0.04 : cfg.spam_name_weight);
  for (std::size_t i = 0; i < length; ++i) {
    double roll = rng.uniform();
    if (roll < w_background) {
      writer.add(im.ham_core[im.ham_core_dist.sample(rng)], rng);
    } else if (roll < w_colloquial) {
      writer.add(im.ham_colloquial[im.colloquial_dist.sample(rng)], rng);
    } else if (roll < w_junk) {
      writer.add(im.junk[im.junk_dist.sample(rng)], rng);
    } else if (roll < w_url) {
      writer.add("http://" + domain + "/" +
                     im.spam_vocab[im.spam_dist.sample(rng)],
                 rng);
    } else if (roll < w_number) {
      writer.add(random_number_token(rng, /*money=*/rng.bernoulli(0.6)), rng);
    } else if (roll < w_name) {
      writer.add(rng.bernoulli(0.5)
                     ? im.first_names[rng.index(im.first_names.size())]
                     : im.last_names[rng.index(im.last_names.size())],
                 rng);
    } else {
      writer.add(im.spam_vocab[im.spam_dist.sample(rng)], rng);
    }
  }
  body += "\n";

  return email::MessageBuilder()
      .from(from)
      .to(to)
      .subject(subject)
      .date(random_date_header(rng))
      .message_id(random_message_id(rng, domain))
      .body(std::move(body))
      .build();
}

LabeledMessage TrecLikeGenerator::generate(TrueLabel label,
                                           util::Rng& rng) const {
  return {label == TrueLabel::ham ? generate_ham(rng) : generate_spam(rng),
          label};
}

Dataset TrecLikeGenerator::sample_mailbox(std::size_t size,
                                          double spam_fraction,
                                          util::Rng& rng) const {
  if (spam_fraction < 0.0 || spam_fraction > 1.0) {
    throw InvalidArgument("sample_mailbox: spam_fraction outside [0,1]");
  }
  auto spam_count = static_cast<std::size_t>(
      std::llround(static_cast<double>(size) * spam_fraction));
  Dataset out;
  out.items.reserve(size);
  std::vector<TrueLabel> labels;
  labels.reserve(size);
  labels.insert(labels.end(), spam_count, TrueLabel::spam);
  labels.insert(labels.end(), size - spam_count, TrueLabel::ham);
  rng.shuffle(labels);
  for (TrueLabel label : labels) out.items.push_back(generate(label, rng));
  return out;
}

std::vector<std::string> TrecLikeGenerator::full_vocabulary() const {
  const Impl& im = *impl_;
  std::vector<std::string> vocab;
  vocab.reserve(im.ham_core.size() + im.ham_colloquial.size() +
                im.spam_vocab.size() + im.junk.size() +
                im.first_names.size() + im.last_names.size() +
                im.companies.size());
  auto append = [&vocab](const std::vector<std::string>& words) {
    vocab.insert(vocab.end(), words.begin(), words.end());
  };
  append(im.ham_core);
  append(im.ham_colloquial);
  append(im.spam_vocab);
  append(im.junk);
  append(im.first_names);
  append(im.last_names);
  append(im.companies);
  return vocab;
}

}  // namespace sbx::corpus
