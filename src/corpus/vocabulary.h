// sbx/corpus/vocabulary.h
//
// Deterministic synthetic lexicons standing in for the paper's word
// sources:
//   * GNU Aspell English dictionary 6.0-0 (98,568 words)   -> aspell_like()
//   * top 90,000 words of the Westbury Usenet corpus, with
//     a ~61,000-word overlap with Aspell                    -> usenet_like()
//
// Words are pronounceable syllable strings (onset-vowel-coda), pairwise
// distinct by construction, 3-12 characters, lower-case — i.e. they pass
// through the SpamBayes tokenizer unchanged. "Colloquial" words (the
// Usenet-minus-Aspell remainder: slang, misspellings) are mutations of
// dictionary words plus apostrophe forms, kept disjoint from the formal
// lexicon by construction.
//
// Why this preserves the paper's behaviour: the attacks only care about
// *which* token strings coincide between attack dictionaries and the
// victim's email distribution, never about meaning. The lexicon sizes and
// overlap match the paper's reported numbers, so attack coverage of ham
// token mass — the quantity that drives Figures 1 and 5 — is reproduced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace sbx::corpus {

/// Deterministic word factory: word(i) is a unique pronounceable string for
/// every index i. No randomness; the same index always yields the same word.
class WordGenerator {
 public:
  /// The i-th formal word. Distinct indices yield distinct words.
  static std::string word(std::uint64_t index);

  /// A colloquial mutation of the i-th formal word, guaranteed distinct
  /// from every formal word (mutations append letter doubling / drop a
  /// vowel / add an apostrophe suffix, then a disambiguating syllable).
  static std::string colloquial_word(std::uint64_t index);
};

/// Paper-calibrated lexicon sizes.
struct LexiconSizes {
  std::size_t aspell = 98'568;   // GNU Aspell en 6.0-0 word count
  std::size_t usenet = 90'000;   // top-ranked Usenet words used in the attack
  std::size_t overlap = 61'000;  // |Aspell intersection Usenet| per §4.2
};

/// The three word lists the attacks and the generator share.
class Lexicons {
 public:
  /// Builds all lexicons deterministically. `sizes.overlap` words of the
  /// Usenet list are drawn from the front of the Aspell list (the common,
  /// high-frequency region that real ham uses); the remainder are
  /// colloquial words outside the formal dictionary.
  explicit Lexicons(const LexiconSizes& sizes = {});

  /// Aspell-like formal dictionary (size: sizes.aspell).
  const std::vector<std::string>& aspell() const { return aspell_; }

  /// Usenet-like ranked word list (size: sizes.usenet). The first
  /// `overlap()` entries are also in aspell(); the rest are colloquial.
  const std::vector<std::string>& usenet() const { return usenet_; }

  /// Usenet-minus-Aspell words (slang/misspellings).
  const std::vector<std::string>& colloquial() const { return colloquial_; }

  std::size_t overlap() const { return sizes_.overlap; }
  const LexiconSizes& sizes() const { return sizes_; }

  /// Membership test against the formal dictionary.
  bool in_aspell(const std::string& word) const {
    return aspell_set_.count(word) != 0;
  }

 private:
  LexiconSizes sizes_;
  std::vector<std::string> aspell_;
  std::vector<std::string> usenet_;
  std::vector<std::string> colloquial_;
  std::unordered_set<std::string> aspell_set_;
};

}  // namespace sbx::corpus
