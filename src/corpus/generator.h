// sbx/corpus/generator.h
//
// Synthetic TREC-2005-like email source. The paper evaluates on the TREC
// 2005 spam corpus (92,189 Enron-based emails, 52,790 spam / 39,399 ham),
// which we cannot redistribute; this generator is the documented
// substitution (DESIGN.md §3). It produces RFC 2822 messages whose *token
// statistics* reproduce the properties the attacks exploit:
//
//  * ham bodies draw from a Zipf-Mandelbrot mixture over (a) a formal
//    English core inside the Aspell/Usenet overlap, (b) colloquial
//    Usenet-only words (slang/misspellings — the reason the Usenet attack
//    beats the Aspell attack), (c) proper nouns (people/companies, in no
//    dictionary), (d) numbers;
//  * spam bodies draw from a distinct sales vocabulary, obfuscated junk
//    tokens, shared English background, URLs and prices;
//  * body lengths are log-normal, calibrated so the corpus-wide mean email
//    carries ~280 tokens, matching the paper's token-ratio statistics
//    (204 Aspell attack emails ~ 7x the tokens of a 10,000-message inbox);
//  * every message carries realistic headers (From/To/Subject/Date/
//    Message-ID) that the SpamBayes tokenizer turns into header tokens.
//
// Everything is deterministic given the caller-provided Rng.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corpus/dataset.h"
#include "corpus/vocabulary.h"
#include "email/message.h"
#include "util/random.h"

namespace sbx::corpus {

/// Tunable shape of the synthetic corpus. Defaults are calibrated to the
/// paper (see DESIGN.md §3 for the mapping).
struct GeneratorConfig {
  LexiconSizes lexicon_sizes;

  // --- ham token mixture ---
  std::size_t ham_core_vocab = 24'000;       // formal words ham uses
  std::size_t ham_colloquial_vocab = 20'000; // slang words ham uses
  double ham_colloquial_weight = 0.13;  // fraction of body tokens
  double ham_name_weight = 0.05;        // people/company mentions
  double ham_number_weight = 0.04;      // figures, dates, amounts
  double ham_url_weight = 0.01;         // intranet links

  // --- spam token mixture ---
  std::size_t spam_vocab = 6'000;            // sales vocabulary (formal)
  std::size_t spam_junk_vocab = 2'500;       // obfuscated tokens (no dict)
  double spam_background_weight = 0.32;  // shared English
  double spam_colloquial_weight = 0.04;
  double spam_junk_weight = 0.08;
  double spam_url_weight = 0.05;
  double spam_number_weight = 0.05;
  double spam_name_weight = 0.02;  // personalization ("dear <name>")

  /// Probability that a spam subject word is an ordinary English word
  /// rather than sales vocabulary. Real spam mimics legitimate subjects
  /// ("RE: your account"), which keeps header tokens from becoming
  /// class-pure oracles — the TREC corpus behaves the same way.
  double spam_subject_ham_word_prob = 0.5;

  /// Fraction of spam that is "hard": plain-text scams built almost
  /// entirely from ordinary English with only a few sales words. These
  /// score near the ham/spam boundary, reproducing the score overlap the
  /// TREC corpus exhibits (without them, synthetic spam separates so
  /// cleanly that the Figure-5 threshold defense looks unrealistically
  /// perfect).
  double hard_spam_fraction = 0.12;

  // --- Zipf-Mandelbrot shape: P(rank k) ~ 1/(k+1+q)^s ---
  double zipf_exponent = 1.08;
  double zipf_offset = 3.0;

  // --- body length (tokens): exp(Normal(log_mean, log_sigma)) ---
  double body_log_mean = 5.35;  // ~ log 210
  double body_log_sigma = 0.6;
  std::size_t min_body_tokens = 25;
  std::size_t max_body_tokens = 1'500;

  // --- entity pools ---
  std::size_t first_name_pool = 150;
  std::size_t last_name_pool = 150;
  std::size_t company_pool = 60;
  std::size_t spam_domain_pool = 400;
};

/// Deterministic synthetic corpus source. Thread-safe for concurrent reads
/// (all mutation happens at construction); pass each thread its own Rng.
class TrecLikeGenerator {
 public:
  explicit TrecLikeGenerator(GeneratorConfig config = {});
  ~TrecLikeGenerator();

  TrecLikeGenerator(const TrecLikeGenerator&) = delete;
  TrecLikeGenerator& operator=(const TrecLikeGenerator&) = delete;

  const GeneratorConfig& config() const { return config_; }
  const Lexicons& lexicons() const;

  /// One legitimate business email.
  email::Message generate_ham(util::Rng& rng) const;

  /// One advertisement spam email.
  email::Message generate_spam(util::Rng& rng) const;

  /// Labeled convenience wrapper.
  LabeledMessage generate(TrueLabel label, util::Rng& rng) const;

  /// Samples an inbox of `size` messages with round(size*spam_fraction)
  /// spam, in random interleaved order.
  Dataset sample_mailbox(std::size_t size, double spam_fraction,
                         util::Rng& rng) const;

  /// Every plain word the generator can ever emit in a body (ham core,
  /// colloquial, names, companies, spam vocabulary, junk). This is the
  /// token universe of the paper's *optimal* attack (§3.4: "include all
  /// possible words").
  std::vector<std::string> full_vocabulary() const;

  /// Word pools, exposed for attacks/tests.
  const std::vector<std::string>& ham_core_words() const;
  const std::vector<std::string>& ham_colloquial_words() const;
  const std::vector<std::string>& spam_vocab_words() const;
  const std::vector<std::string>& spam_junk_words() const;

  /// One (word, probability) entry of the ham body-token distribution.
  struct WordProbability {
    std::string word;
    double probability = 0.0;
  };

  /// The exact unigram distribution ham bodies are drawn from (mixture
  /// weights times the per-pool Zipf/uniform probabilities; numbers and
  /// URLs, which are not enumerable words, are excluded, so the
  /// probabilities sum to slightly below 1). This is the distribution `p`
  /// of §3.4 — what a maximally informed attacker knows — and feeds the
  /// optimal *constrained* attack the paper leaves to future work.
  std::vector<WordProbability> ham_word_distribution() const;

 private:
  struct Impl;

  GeneratorConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sbx::corpus
