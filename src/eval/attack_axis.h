// sbx/eval/attack_axis.h
//
// Glue between the experiment registry and the attack registry: the
// generic experiments accept an `attack=<registry-name>` config key and
// resolve it here, which is what makes the attack a first-class sweep
// axis (`sbx_experiments sweep dictionary --axis attack=usenet,aspell,
// backdoor-trigger ...`) instead of a hard-coded class per driver.
//
// Parameter flow: an attack declares its own schema (core::Attack); an
// experiment that declares a same-named key (e.g. "dictionary_size",
// "guess_probability", "batch_size") forwards its resolved value into the
// attack's config as the raw validated string — lossless, so the bound
// attack sees bit-identical parameters to the pre-port hard-coded path.
#pragma once

#include <string>
#include <string_view>

#include "core/attack.h"
#include "core/attack_registry.h"
#include "eval/experiment.h"
#include "eval/experiments.h"

namespace sbx::eval {

/// A registry attack plus its resolved parameter config.
struct BoundAttack {
  const core::Attack* attack = nullptr;
  util::Config params;
};

/// Resolves `name` through core::builtin_attack_registry() (throwing with
/// the known-name list on a miss) and builds its params: attack schema
/// defaults, then every same-named key of `experiment_config` copied over
/// as the raw string.
BoundAttack bind_attack(std::string_view name, const Config& experiment_config);

/// Crafts the bound attack's canonical poison as a PoisonSpec (display
/// name, payload size, message, training label, trigger tokens). `rng`
/// feeds attacks whose canonical message has random parts (ham-labeled
/// and backdoor-trigger clone ham headers); the dictionary family ignores
/// it. Throws sbx::InvalidArgument when the attack has no canonical
/// identical-copy form (focused, good-word, obfuscation).
PoisonSpec resolve_poison(const BoundAttack& bound,
                          const corpus::TrecLikeGenerator& generator,
                          util::Rng& rng);

/// Stamps the attack's identity (registry name + taxonomy coordinates)
/// onto a ResultDoc — the metadata `check_bench.py validate-resultdoc`
/// requires of every document.
void tag_attack(ResultDoc& doc, const core::Attack& attack);

/// Shortest round-trip decimal representation of a double (std::to_chars):
/// parsing it back yields the identical bits, so doubles can cross the
/// string-typed Config boundary losslessly.
std::string round_trip_string(double value);

}  // namespace sbx::eval
