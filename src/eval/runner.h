// sbx/eval/runner.h
//
// eval::Runner — the single parallel execution path shared by every
// experiment driver. It enforces the determinism contract experiments.h
// promises:
//
//  * every trial's RNG is pre-forked sequentially from the master stream,
//    in program order, before any trial starts — streams depend on the
//    seed and the sequence of forks taken from the master (util::Rng::fork
//    is stateful), never on thread scheduling;
//  * trial results land in per-index slots and are merged on the calling
//    thread in ascending index order, so floating-point accumulation
//    (util::RunningStats, threshold sums) is bit-identical at any thread
//    count;
//  * the thread count changes wall-clock time only, never results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/random.h"
#include "util/thread_pool.h"

namespace sbx::eval {

/// Fans experiment trials (cross-validation folds, repetitions, RONI
/// queries, whole sweep configs) out across the process-wide
/// util::ThreadPool::shared() — Runners borrow the pool, they never own
/// one, so nested parallelism (an eval::Sweep trial that itself maps folds)
/// shares one set of workers instead of oversubscribing. Waiting uses the
/// pool's run-inline-while-waiting policy, so nested map() calls cannot
/// deadlock at any pool size. Trial exceptions are rethrown on the calling
/// thread after all trials finish.
class Runner {
 public:
  /// `threads` = 0 selects hardware concurrency (min 1). A Runner with an
  /// effective thread count of 1 runs trials inline, never touching the
  /// shared pool; any larger count dispatches to the shared pool (whose
  /// size — not `threads` — bounds process-wide parallelism). By the
  /// determinism contract the choice affects wall-clock time only.
  explicit Runner(std::uint64_t seed, std::size_t threads = 0);

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Setup randomness (corpus sampling, fold splits) — forked from the same
  /// master stream as the trials so one seed drives the whole run.
  util::Rng fork(std::uint64_t key) { return master_.fork(key); }

  std::size_t thread_count() const { return threads_; }

  /// Runs trial(i, rng_i) for i in [0, trials) across the pool and returns
  /// the results in trial-index order. rng_i = master.fork(salt + i),
  /// forked in ascending i before any trial starts. Note util::Rng::fork
  /// is stateful: a stream also depends on every fork previously taken
  /// from the master (setup fork() calls, earlier map() batches), so keep
  /// a driver's fork order fixed to keep its streams reproducible.
  template <typename Trial>
  auto map(std::size_t trials, std::uint64_t salt, Trial&& trial) {
    return map_impl(trials, fork_streams(salt, trials),
                    std::forward<Trial>(trial));
  }

  /// Same, but forks the per-trial streams from `parent` (rng_i =
  /// parent.fork(i)) — for drivers that scope a batch of trials to a
  /// sub-experiment stream.
  template <typename Trial>
  auto map(std::size_t trials, util::Rng& parent, Trial&& trial) {
    std::vector<util::Rng> rngs;
    rngs.reserve(trials);
    for (std::size_t i = 0; i < trials; ++i) rngs.push_back(parent.fork(i));
    return map_impl(trials, std::move(rngs), std::forward<Trial>(trial));
  }

  /// map() followed by an ordered merge: merge(i, result_i) runs on the
  /// calling thread in ascending trial order. This is the only sanctioned
  /// way to accumulate across trials — merging from inside trials (under a
  /// mutex) would reorder floating-point sums with the schedule.
  template <typename Trial, typename Merge>
  void map_reduce(std::size_t trials, std::uint64_t salt, Trial&& trial,
                  Merge&& merge) {
    auto results = map(trials, salt, std::forward<Trial>(trial));
    for (std::size_t i = 0; i < results.size(); ++i) {
      merge(i, std::move(results[i]));
    }
  }

  /// map_reduce with parent-scoped trial streams (see the map overload).
  template <typename Trial, typename Merge>
  void map_reduce(std::size_t trials, util::Rng& parent, Trial&& trial,
                  Merge&& merge) {
    auto results = map(trials, parent, std::forward<Trial>(trial));
    for (std::size_t i = 0; i < results.size(); ++i) {
      merge(i, std::move(results[i]));
    }
  }

 private:
  std::vector<util::Rng> fork_streams(std::uint64_t salt, std::size_t n);

  template <typename Trial>
  auto map_impl(std::size_t trials, std::vector<util::Rng> rngs,
                Trial&& trial) {
    using Result =
        std::decay_t<std::invoke_result_t<Trial&, std::size_t, util::Rng&>>;
    // std::vector<bool> packs bits: concurrent per-index writes would race.
    static_assert(!std::is_same_v<Result, bool>,
                  "Runner::map: return a struct (or char) instead of bool");
    std::vector<Result> results(trials);
    dispatch(trials,
             [&](std::size_t i) { results[i] = trial(i, rngs[i]); });
    return results;
  }

  /// Runs body(i) for i in [0, n) — inline when min(threads, n) == 1,
  /// otherwise on the shared pool — and rethrows the first trial exception.
  void dispatch(std::size_t n, const std::function<void(std::size_t)>& body);

  util::Rng master_;
  std::size_t threads_;
};

}  // namespace sbx::eval
