#include "eval/experiments.h"

namespace sbx::eval {

void train_on_indices(spambayes::Filter& filter,
                      const corpus::TokenizedDataset& data,
                      const std::vector<std::size_t>& indices) {
  for (std::size_t i : indices) {
    const auto& item = data.items[i];
    if (item.label == corpus::TrueLabel::spam) {
      filter.train_spam_ids(item.ids);
    } else {
      filter.train_ham_ids(item.ids);
    }
  }
}

ConfusionMatrix classify_indices(const spambayes::Filter& filter,
                                 const corpus::TokenizedDataset& data,
                                 const std::vector<std::size_t>& indices) {
  ConfusionMatrix matrix;
  filter.classify_batch(
      indices.size(),
      [&](std::size_t i) -> const spambayes::TokenIdList& {
        return data.items[indices[i]].ids;
      },
      [&](std::size_t i, const spambayes::BatchScore& scored) {
        matrix.add(data.items[indices[i]].label, scored.verdict);
      });
  return matrix;
}

std::size_t raw_token_count(const corpus::Dataset& data,
                            const spambayes::Tokenizer& tokenizer) {
  std::size_t total = 0;
  for (const auto& item : data.items) {
    total += tokenizer.tokenize_ids(item.message).size();
  }
  return total;
}

}  // namespace sbx::eval
