// sbx/eval/filter_axis.h
//
// FilterOptions as a config surface: experiments declare a `tokenizer`
// preset key (+ `tokenizer_params` fine-grained overrides) and resolve
// them to spambayes::FilterOptions here. This is what makes the tokenizer
// flavor a first-class sweep axis (`sbx_experiments sweep dictionary
// --axis tokenizer=spambayes,bogofilter,spamassassin ...`) — the
// ext_tokenizer_flavors bench rides the same registry path as every other
// sweep instead of hard-coding flavor structs.
//
// Defaults resolve to FilterOptions{} exactly, so experiments that gained
// the axis behave bit-identically until someone actually sets it.
#pragma once

#include "spambayes/options.h"
#include "util/config.h"

namespace sbx::eval {

/// Declares `tokenizer` (preset name, default "spambayes") and
/// `tokenizer_params` ('k=v;k=v' TokenizerOptions field overrides) on an
/// experiment schema.
void add_tokenizer_axis(util::ConfigSchema& schema);

/// Resolves the preset + overrides declared by add_tokenizer_axis into
/// FilterOptions. Unknown preset or override key throws InvalidArgument
/// with the known-name list.
spambayes::FilterOptions resolve_filter_options(const util::Config& config);

}  // namespace sbx::eval
