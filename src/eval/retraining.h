// sbx/eval/retraining.h
//
// Periodic-retraining simulation of the paper's deployment scenario
// (§2.1): "the organization retrains SpamBayes periodically (e.g.,
// weekly)" on the mail it received. The simulator advances week by week,
// feeds each week's inbound mail (optionally poisoned on a schedule) into
// the training pipeline — optionally gated by RONI and/or re-deriving
// dynamic thresholds — retrains, and measures the filter on fresh mail.
//
// This extends the paper's one-shot experiments with the question its
// deployment story raises but never measures: how does poison *persist*
// across retraining cycles, under cumulative vs sliding-window training?
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/dynamic_threshold.h"
#include "core/roni.h"
#include "corpus/generator.h"
#include "eval/metrics.h"
#include "spambayes/filter.h"

namespace sbx::eval {

/// One week's attack injection: `copies` copies of a message, trained
/// under `label` (spam for the §2.2 contamination model; ham for the
/// inbox-poisoning extensions — ham-labeled, backdoor). Ham-labeled
/// injections bypass the RONI gate: the gate screens the spam folder.
struct AttackInjection {
  std::size_t week = 0;
  spambayes::TokenIdSet ids;
  std::uint32_t copies = 0;
  corpus::TrueLabel label = corpus::TrueLabel::spam;
  /// BadNets trigger ids: when non-empty, every weekly measurement also
  /// scores the fresh spam with these ids stamped in (WeekReport
  /// trigger_probes/trigger_leaked).
  spambayes::TokenIdSet trigger_ids;

  AttackInjection() = default;
  AttackInjection(std::size_t week_in, spambayes::TokenIdSet ids_in,
                  std::uint32_t copies_in)
      : week(week_in), ids(std::move(ids_in)), copies(copies_in) {}
  /// String-set convenience: interns and forwards.
  AttackInjection(std::size_t week_in, const spambayes::TokenSet& tokens,
                  std::uint32_t copies_in)
      : week(week_in),
        ids(spambayes::intern_tokens(tokens)),
        copies(copies_in) {}
};

/// Timeline configuration.
struct RetrainingConfig {
  std::size_t weeks = 8;
  std::size_t messages_per_week = 1'000;
  double spam_fraction = 0.5;
  std::size_t test_messages = 400;  // fresh mail scored after each retrain

  /// Cumulative: retrain on everything ever received. Sliding window:
  /// retrain on the last `window_weeks` weeks only.
  bool cumulative = true;
  std::size_t window_weeks = 3;

  /// Gate spam-labeled training candidates through RONI (§5.1). The gate's
  /// measurement pool is the previous weeks' admitted mail.
  bool roni_gate = false;
  core::RoniConfig roni;

  /// Re-derive classification thresholds from each cycle's training set
  /// (§5.2) instead of the static 0.15/0.9.
  bool dynamic_thresholds = false;
  core::DynamicThresholdConfig threshold_targets{0.05, 0.95};

  spambayes::FilterOptions filter;
  std::uint64_t seed = 20080405;
};

/// Post-retrain measurement for one week.
struct WeekReport {
  std::size_t week = 0;
  ConfusionMatrix test;            // fresh-mail classification
  std::size_t attack_offered = 0;  // attack copies arriving this week
  std::size_t attack_admitted = 0; // copies surviving the RONI gate
  core::ThresholdPair thresholds{0.15, 0.9};
  std::size_t training_size = 0;   // messages trained on this cycle
  /// BadNets measurement (zero unless an injection carries trigger ids):
  /// fresh spam re-scored with the trigger stamped in; "leaked" = not
  /// filed as spam under this week's thresholds.
  std::size_t trigger_probes = 0;
  std::size_t trigger_leaked = 0;
};

/// Runs the timeline; returns one report per week (after that week's
/// retraining). Attack injections with week >= config.weeks are ignored.
std::vector<WeekReport> run_retraining_timeline(
    const corpus::TrecLikeGenerator& gen,
    const std::vector<AttackInjection>& injections,
    const RetrainingConfig& config);

}  // namespace sbx::eval
