// sbx/eval/metrics.h
//
// Classification accounting for the three-way SpamBayes output. The paper
// (§2.3) stresses that plain misclassification rates are not enough: ham
// filed as *unsure* is nearly as costly to the user as ham filed as spam,
// so every experiment reports both ham-as-spam and ham-as-spam-or-unsure.
#pragma once

#include <cstddef>
#include <string>

#include "corpus/dataset.h"
#include "spambayes/classifier.h"

namespace sbx::eval {

/// 2 (true label) x 3 (verdict) confusion matrix.
class ConfusionMatrix {
 public:
  /// Records one classification.
  void add(corpus::TrueLabel truth, spambayes::Verdict verdict,
           std::size_t count = 1);

  /// Merges another matrix (fold aggregation).
  void merge(const ConfusionMatrix& other);

  std::size_t count(corpus::TrueLabel truth,
                    spambayes::Verdict verdict) const;
  std::size_t total(corpus::TrueLabel truth) const;
  std::size_t total() const;

  // --- ham-side rates (returns 0 when no ham was classified) ---
  double ham_as_spam_rate() const;
  double ham_as_unsure_rate() const;
  /// The paper's "misclassified" solid lines: spam or unsure.
  double ham_misclassified_rate() const;

  // --- spam-side rates ---
  double spam_as_ham_rate() const;
  double spam_as_unsure_rate() const;
  double spam_misclassified_rate() const;

  /// Overall fraction classified correctly (unsure counts as incorrect).
  double accuracy() const;

  /// Multi-line human-readable rendering.
  std::string to_string() const;

 private:
  double rate(corpus::TrueLabel truth, spambayes::Verdict verdict) const;

  std::size_t counts_[2][3] = {{0, 0, 0}, {0, 0, 0}};
};

}  // namespace sbx::eval
