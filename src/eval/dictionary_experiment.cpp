// Figure 1 driver: dictionary attacks under K-fold cross-validation.
#include <algorithm>

#include "core/attack_math.h"
#include "eval/experiments.h"
#include "eval/runner.h"

namespace sbx::eval {

DictionaryCurve run_dictionary_curve(const corpus::TrecLikeGenerator& gen,
                                     const core::DictionaryAttack& attack,
                                     const DictionaryCurveConfig& config) {
  Runner runner(config.seed, config.threads);

  // Pool sized so each fold trains on ~training_set_size messages:
  // train = pool * (K-1)/K.
  const std::size_t pool_size =
      config.training_set_size * config.folds / (config.folds - 1);
  util::Rng corpus_rng = runner.fork(1);
  const corpus::Dataset dataset =
      gen.sample_mailbox(pool_size, config.spam_fraction, corpus_rng);

  const spambayes::Tokenizer tokenizer(config.filter.tokenizer);
  const corpus::TokenizedDataset tokenized =
      corpus::tokenize_dataset(dataset, tokenizer);
  // §4.2 compares attack tokens against the tokens of the *training* inbox;
  // scale the pool-wide count (collected during tokenize_dataset — no
  // second tokenization pass) down to one fold's training share.
  const std::size_t clean_tokens =
      tokenized.raw_tokens * (config.folds - 1) / config.folds;

  // Tokenize the attack message once; the raw list carries the §4.2
  // numerator, its deduplicated ids feed training.
  const spambayes::TokenIdList attack_raw =
      tokenizer.tokenize_ids(attack.attack_message());
  const std::size_t attack_tokens_per_message = attack_raw.size();
  const spambayes::TokenIdSet attack_ids =
      spambayes::unique_token_ids(attack_raw);

  util::Rng fold_rng = runner.fork(2);
  const std::vector<corpus::FoldSplit> folds =
      corpus::k_fold_splits(tokenized.size(), config.folds, fold_rng);

  // Fractions evaluated in ascending order so attack copies can be added
  // incrementally; a leading 0 gives the control measurement.
  std::vector<double> fractions = config.attack_fractions;
  std::sort(fractions.begin(), fractions.end());
  fractions.insert(fractions.begin(), 0.0);

  std::vector<ConfusionMatrix> per_fraction(fractions.size());
  std::vector<util::RunningStats> fold_spread(fractions.size());

  runner.map_reduce(
      folds.size(), /*salt=*/100,
      [&](std::size_t f, util::Rng&) {
        const corpus::FoldSplit& split = folds[f];
        spambayes::Filter filter(config.filter);
        train_on_indices(filter, tokenized, split.train);

        std::size_t trained_attack = 0;
        std::vector<ConfusionMatrix> local(fractions.size());
        for (std::size_t pi = 0; pi < fractions.size(); ++pi) {
          const std::size_t want =
              core::attack_message_count(split.train.size(), fractions[pi]);
          if (want > trained_attack) {
            filter.train_spam_ids(
                attack_ids, static_cast<std::uint32_t>(want - trained_attack));
            trained_attack = want;
          }
          local[pi] = classify_indices(filter, tokenized, split.test);
        }
        return local;
      },
      [&](std::size_t, std::vector<ConfusionMatrix> local) {
        for (std::size_t pi = 0; pi < fractions.size(); ++pi) {
          per_fraction[pi].merge(local[pi]);
          fold_spread[pi].add(local[pi].ham_misclassified_rate());
        }
      });

  DictionaryCurve curve;
  curve.attack_name = attack.name();
  curve.dictionary_size = attack.dictionary_size();
  const std::size_t train_size = folds.front().train.size();
  for (std::size_t pi = 0; pi < fractions.size(); ++pi) {
    DictionaryCurvePoint point;
    point.attack_fraction = fractions[pi];
    point.attack_messages =
        core::attack_message_count(train_size, fractions[pi]);
    point.attack_token_ratio =
        clean_tokens == 0
            ? 0.0
            : static_cast<double>(point.attack_messages *
                                  attack_tokens_per_message) /
                  static_cast<double>(clean_tokens);
    point.matrix = per_fraction[pi];
    point.ham_misclassified_by_fold = fold_spread[pi];
    curve.points.push_back(std::move(point));
  }
  return curve;
}

}  // namespace sbx::eval
