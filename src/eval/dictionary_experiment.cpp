// Figure 1 driver: identical-copy Causative attacks under K-fold
// cross-validation. Generic over the PoisonSpec — spam-labeled dictionary
// poisoning (the paper's §3.2 attacks) runs bit-identically to the
// historical driver, while ham-labeled specs (ham-labeled, backdoor)
// train their copies as ham and, when the spec carries BadNets trigger
// tokens, every test-fold spam is additionally re-classified with the
// trigger stamped in.
#include <algorithm>

#include "core/attack_math.h"
#include "eval/experiments.h"
#include "eval/runner.h"

namespace sbx::eval {

PoisonSpec poison_spec_from(const core::DictionaryAttack& attack) {
  PoisonSpec spec;
  spec.name = attack.name();
  spec.payload_size = attack.dictionary_size();
  spec.message = attack.attack_message();
  spec.train_as = corpus::TrueLabel::spam;
  return spec;
}

spambayes::TokenIdSet trigger_token_ids(
    const PoisonSpec& spec, const spambayes::Tokenizer& tokenizer) {
  if (spec.trigger.empty()) return {};
  std::string joined;
  for (const auto& token : spec.trigger) {
    if (!joined.empty()) joined.push_back(' ');
    joined += token;
  }
  return spambayes::unique_token_ids(tokenizer.tokenize_text_ids(joined));
}

DictionaryCurve run_dictionary_curve(const corpus::TrecLikeGenerator& gen,
                                     const PoisonSpec& spec,
                                     const DictionaryCurveConfig& config) {
  Runner runner(config.seed, config.threads);

  // Pool sized so each fold trains on ~training_set_size messages:
  // train = pool * (K-1)/K.
  const std::size_t pool_size =
      config.training_set_size * config.folds / (config.folds - 1);
  util::Rng corpus_rng = runner.fork(1);
  const corpus::Dataset dataset =
      gen.sample_mailbox(pool_size, config.spam_fraction, corpus_rng);

  const spambayes::Tokenizer tokenizer(config.filter.tokenizer);
  const corpus::TokenizedDataset tokenized =
      corpus::tokenize_dataset(dataset, tokenizer);
  // §4.2 compares attack tokens against the tokens of the *training* inbox;
  // scale the pool-wide count (collected during tokenize_dataset — no
  // second tokenization pass) down to one fold's training share.
  const std::size_t clean_tokens =
      tokenized.raw_tokens * (config.folds - 1) / config.folds;

  // Tokenize the attack message once; the raw list carries the §4.2
  // numerator, its deduplicated ids feed training.
  const spambayes::TokenIdList attack_raw =
      tokenizer.tokenize_ids(spec.message);
  const std::size_t attack_tokens_per_message = attack_raw.size();
  const spambayes::TokenIdSet attack_ids =
      spambayes::unique_token_ids(attack_raw);
  const bool train_as_spam = spec.train_as == corpus::TrueLabel::spam;

  // The BadNets trigger, as the ids stamping it onto a message produces.
  const bool has_trigger = !spec.trigger.empty();
  const spambayes::TokenIdSet trigger_ids =
      trigger_token_ids(spec, tokenizer);

  util::Rng fold_rng = runner.fork(2);
  const std::vector<corpus::FoldSplit> folds =
      corpus::k_fold_splits(tokenized.size(), config.folds, fold_rng);

  // Fractions evaluated in ascending order so attack copies can be added
  // incrementally; a leading 0 gives the control measurement.
  std::vector<double> fractions = config.attack_fractions;
  std::sort(fractions.begin(), fractions.end());
  fractions.insert(fractions.begin(), 0.0);

  std::vector<ConfusionMatrix> per_fraction(fractions.size());
  std::vector<util::RunningStats> fold_spread(fractions.size());
  std::vector<ConfusionMatrix> per_fraction_triggered(fractions.size());

  struct FoldResult {
    std::vector<ConfusionMatrix> plain;
    std::vector<ConfusionMatrix> triggered;
  };

  runner.map_reduce(
      folds.size(), /*salt=*/100,
      [&](std::size_t f, util::Rng&) {
        const corpus::FoldSplit& split = folds[f];
        spambayes::Filter filter(config.filter);
        train_on_indices(filter, tokenized, split.train);

        // Stamped test-fold spam (trigger measurement only): id sets are
        // precomputed per fold, re-classified at every fraction.
        std::vector<std::size_t> spam_test;
        std::vector<spambayes::TokenIdSet> stamped;
        if (has_trigger) {
          for (std::size_t i : split.test) {
            if (tokenized.items[i].label != corpus::TrueLabel::spam) continue;
            spam_test.push_back(i);
            spambayes::TokenIdList ids = tokenized.items[i].ids;
            ids.insert(ids.end(), trigger_ids.begin(), trigger_ids.end());
            stamped.push_back(spambayes::unique_token_ids(std::move(ids)));
          }
        }

        std::size_t trained_attack = 0;
        FoldResult local;
        local.plain.resize(fractions.size());
        local.triggered.resize(fractions.size());
        for (std::size_t pi = 0; pi < fractions.size(); ++pi) {
          const std::size_t want =
              core::attack_message_count(split.train.size(), fractions[pi]);
          if (want > trained_attack) {
            const auto copies =
                static_cast<std::uint32_t>(want - trained_attack);
            if (train_as_spam) {
              filter.train_spam_ids(attack_ids, copies);
            } else {
              filter.train_ham_ids(attack_ids, copies);
            }
            trained_attack = want;
          }
          local.plain[pi] = classify_indices(filter, tokenized, split.test);
          if (has_trigger) {
            filter.classify_batch(
                stamped.size(),
                [&](std::size_t i) -> const spambayes::TokenIdList& {
                  return stamped[i];
                },
                [&](std::size_t i, const spambayes::BatchScore& scored) {
                  local.triggered[pi].add(tokenized.items[spam_test[i]].label,
                                          scored.verdict);
                });
          }
        }
        return local;
      },
      [&](std::size_t, FoldResult local) {
        for (std::size_t pi = 0; pi < fractions.size(); ++pi) {
          per_fraction[pi].merge(local.plain[pi]);
          fold_spread[pi].add(local.plain[pi].ham_misclassified_rate());
          per_fraction_triggered[pi].merge(local.triggered[pi]);
        }
      });

  DictionaryCurve curve;
  curve.attack_name = spec.name;
  curve.dictionary_size = spec.payload_size;
  curve.has_trigger = has_trigger;
  const std::size_t train_size = folds.front().train.size();
  for (std::size_t pi = 0; pi < fractions.size(); ++pi) {
    DictionaryCurvePoint point;
    point.attack_fraction = fractions[pi];
    point.attack_messages =
        core::attack_message_count(train_size, fractions[pi]);
    point.attack_token_ratio =
        clean_tokens == 0
            ? 0.0
            : static_cast<double>(point.attack_messages *
                                  attack_tokens_per_message) /
                  static_cast<double>(clean_tokens);
    point.matrix = per_fraction[pi];
    point.ham_misclassified_by_fold = fold_spread[pi];
    point.triggered = per_fraction_triggered[pi];
    curve.points.push_back(std::move(point));
  }
  return curve;
}

}  // namespace sbx::eval
