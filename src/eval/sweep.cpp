#include "eval/sweep.h"

#include <utility>

#include "eval/runner.h"
#include "util/error.h"
#include "util/strings.h"

namespace sbx::eval {

SweepAxis parse_sweep_axis(std::string_view spec) {
  std::size_t eq = spec.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    throw InvalidArgument("sweep axis '" + std::string(spec) +
                          "' is not of the form key=v1,v2,...");
  }
  SweepAxis axis;
  axis.key = std::string(spec.substr(0, eq));
  axis.values = util::split(spec.substr(eq + 1), ',');
  for (const auto& value : axis.values) {
    if (value.empty()) {
      throw InvalidArgument("sweep axis '" + std::string(spec) +
                            "' has an empty value");
    }
  }
  return axis;
}

std::vector<Config> expand_sweep(const Config& base,
                                 const std::vector<SweepAxis>& axes) {
  for (const auto& axis : axes) {
    if (axis.values.empty()) {
      throw InvalidArgument("sweep axis '" + axis.key + "' has no values");
    }
    // Validate key and every value before expanding, so errors surface
    // once, before any trial runs.
    Config probe = base;
    for (const auto& value : axis.values) probe.set(axis.key, value);
  }

  std::vector<Config> grid = {base};
  // Row-major: the first axis varies slowest (outermost loop).
  for (const auto& axis : axes) {
    std::vector<Config> next;
    next.reserve(grid.size() * axis.values.size());
    for (const auto& config : grid) {
      for (const auto& value : axis.values) {
        Config expanded = config;
        expanded.set(axis.key, value);
        next.push_back(std::move(expanded));
      }
    }
    grid = std::move(next);
  }
  return grid;
}

SweepResult run_sweep(const Experiment& experiment, const Config& base,
                      const std::vector<SweepAxis>& axes,
                      const SweepOptions& options) {
  SweepResult result;
  result.experiment = &experiment;
  result.axes = axes;
  result.configs = expand_sweep(base, axes);
  result.docs.resize(result.configs.size());

  // Whole configs are top-level Runner trials: streams pre-forked in
  // program order (unused by the trials — each config carries its own
  // "seed" — but the contract keeps sweep behaviour uniform with every
  // other driver), results merged in config order on the calling thread.
  const std::uint64_t sweep_seed =
      base.has("seed") ? base.get_uint("seed") : 0;
  Runner runner(sweep_seed, options.threads);
  RunContext ctx;
  ctx.threads = options.experiment_threads;
  const std::size_t total = result.configs.size();
  runner.map_reduce(
      total, /*salt=*/0,
      [&](std::size_t i, util::Rng&) {
        return experiment.run(result.configs[i], ctx);
      },
      [&](std::size_t i, ResultDoc doc) {
        result.docs[i] = std::move(doc);
        if (options.progress) options.progress(i, total);
      });
  return result;
}

util::Table SweepResult::summary() const {
  std::vector<std::string> headers = {"config"};
  for (const auto& axis : axes) headers.push_back(axis.key);
  std::vector<std::string> metric_names;
  if (!docs.empty()) {
    for (const auto& [name, value] : docs.front().metrics) {
      (void)value;
      metric_names.push_back(name);
      headers.push_back(name);
    }
  }
  util::Table table(headers);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    std::vector<std::string> row = {std::to_string(i)};
    for (const auto& axis : axes) {
      std::string value;
      for (const auto& [key, v] : configs[i].items()) {
        if (key == axis.key) {
          value = v;
          break;
        }
      }
      row.push_back(value);
    }
    for (const auto& name : metric_names) {
      std::string cell = "-";
      for (const auto& [metric, value] : docs[i].metrics) {
        if (metric == name) {
          cell = json_number(value);  // locale-independent round-trip form
          break;
        }
      }
      row.push_back(cell);
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace sbx::eval
