#include "eval/attack_axis.h"

#include <charconv>

#include "util/error.h"
#include "util/strings.h"

namespace sbx::eval {

BoundAttack bind_attack(std::string_view name,
                        const Config& experiment_config) {
  const core::Attack& attack = core::builtin_attack_registry().get(name);
  util::Config params = attack.default_params();
  for (const auto& spec : attack.schema().params()) {
    if (experiment_config.has(spec.key)) {
      params.set(spec.key, experiment_config.raw_value(spec.key));
    }
  }
  // Attack-only knobs (trigger_length, mangle_per_query, ...) ride the
  // experiment's generic `attack_params` key: 'k=v;k=v', each assignment
  // validated against the attack's own schema — so every attack parameter
  // is reachable (and sweepable: ';' inside one axis value) without the
  // experiment redeclaring it.
  if (experiment_config.has("attack_params")) {
    for (const std::string& assignment :
         util::split(experiment_config.raw_value("attack_params"), ';')) {
      if (assignment.empty()) continue;
      params.set_key_value(assignment);
    }
  }
  return BoundAttack{&attack, std::move(params)};
}

PoisonSpec resolve_poison(const BoundAttack& bound,
                          const corpus::TrecLikeGenerator& generator,
                          util::Rng& rng) {
  const std::optional<core::CanonicalPoison> canonical =
      bound.attack->canonical_poison(generator, bound.params, rng);
  if (!canonical.has_value()) {
    throw InvalidArgument(
        "attack '" + bound.attack->name() +
        "' has no canonical poison message; this experiment needs an "
        "identical-copy Causative attack (aspell, usenet, optimal, "
        "informed, ham-labeled, backdoor-trigger)");
  }
  PoisonSpec spec;
  spec.name = canonical->display_name;
  spec.payload_size = canonical->payload_size;
  spec.message = canonical->message;
  spec.train_as = canonical->train_as;
  spec.trigger = bound.attack->trigger_tokens(bound.params);
  return spec;
}

void tag_attack(ResultDoc& doc, const core::Attack& attack) {
  doc.attack_name = attack.name();
  doc.attack_taxonomy = attack.properties().description();
}

std::string round_trip_string(double value) {
  char buf[40];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;  // 40 bytes always suffice for a double
  return std::string(buf, ptr);
}

}  // namespace sbx::eval
