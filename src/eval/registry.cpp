#include "eval/registry.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace sbx::eval {

void Registry::add(std::unique_ptr<Experiment> experiment) {
  if (find(experiment->name()) != nullptr) {
    throw InvalidArgument("Registry::add: duplicate experiment '" +
                          experiment->name() + "'");
  }
  experiments_.push_back(std::move(experiment));
}

const Experiment* Registry::find(std::string_view name) const {
  for (const auto& experiment : experiments_) {
    if (experiment->name() == name) return experiment.get();
  }
  return nullptr;
}

const Experiment& Registry::get(std::string_view name) const {
  const Experiment* experiment = find(name);
  if (experiment == nullptr) {
    std::vector<std::string> known;
    for (const Experiment* e : experiments()) known.push_back(e->name());
    throw InvalidArgument(util::unknown_name_message("experiment", name, known));
  }
  return *experiment;
}

std::vector<const Experiment*> Registry::experiments() const {
  std::vector<const Experiment*> out;
  out.reserve(experiments_.size());
  for (const auto& experiment : experiments_) out.push_back(experiment.get());
  std::sort(out.begin(), out.end(),
            [](const Experiment* a, const Experiment* b) {
              return a->name() < b->name();
            });
  return out;
}

const Registry& builtin_registry() {
  static const Registry* registry = [] {
    auto* r = new Registry();
    register_builtin_experiments(*r);
    return r;
  }();
  return *registry;
}

}  // namespace sbx::eval
