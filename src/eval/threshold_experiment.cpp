// Figure 5 driver: dynamic threshold defense vs. the dictionary attack.
#include <algorithm>
#include <mutex>

#include "core/attack_math.h"
#include "eval/experiments.h"
#include "util/thread_pool.h"

namespace sbx::eval {

std::vector<ThresholdCurvePoint> run_threshold_defense_curve(
    const corpus::TrecLikeGenerator& gen, const core::DictionaryAttack& attack,
    const ThresholdDefenseConfig& config) {
  const DictionaryCurveConfig& base = config.base;
  util::Rng master(base.seed);

  const std::size_t pool_size =
      base.training_set_size * base.folds / (base.folds - 1);
  util::Rng corpus_rng = master.fork(1);
  const corpus::Dataset dataset =
      gen.sample_mailbox(pool_size, base.spam_fraction, corpus_rng);
  const spambayes::Tokenizer tokenizer(base.filter.tokenizer);
  const corpus::TokenizedDataset tokenized =
      corpus::tokenize_dataset(dataset, tokenizer);
  const spambayes::TokenSet attack_tokens = spambayes::unique_tokens(
      tokenizer.tokenize(attack.attack_message()));

  util::Rng fold_rng = master.fork(2);
  const std::vector<corpus::FoldSplit> folds =
      corpus::k_fold_splits(tokenized.size(), base.folds, fold_rng);

  std::vector<double> fractions = base.attack_fractions;
  std::sort(fractions.begin(), fractions.end());
  fractions.insert(fractions.begin(), 0.0);

  const std::size_t n_variants = config.variants.size();
  std::vector<ThresholdCurvePoint> points(fractions.size());
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    points[pi].attack_fraction = fractions[pi];
    points[pi].defended.resize(n_variants);
    points[pi].mean_thresholds.resize(n_variants);
  }
  // Accumulate thresholds as sums, convert to means at the end.
  std::vector<std::vector<core::ThresholdPair>> threshold_sums(
      fractions.size(), std::vector<core::ThresholdPair>(n_variants,
                                                         {0.0, 0.0}));
  std::mutex merge_mutex;

  std::vector<util::Rng> fold_rngs;
  fold_rngs.reserve(folds.size());
  for (std::size_t f = 0; f < folds.size(); ++f) {
    fold_rngs.push_back(master.fork(3000 + f));
  }

  util::parallel_for(
      folds.size(),
      [&](std::size_t f) {
        const corpus::FoldSplit& split = folds[f];
        util::Rng rng = fold_rngs[f];
        spambayes::Filter filter(base.filter);
        train_on_indices(filter, tokenized, split.train);

        std::size_t trained_attack = 0;
        std::vector<ConfusionMatrix> local_plain(fractions.size());
        std::vector<std::vector<ConfusionMatrix>> local_defended(
            fractions.size(), std::vector<ConfusionMatrix>(n_variants));
        std::vector<std::vector<core::ThresholdPair>> local_thresholds(
            fractions.size(), std::vector<core::ThresholdPair>(n_variants));

        for (std::size_t pi = 0; pi < fractions.size(); ++pi) {
          const std::size_t want =
              core::attack_message_count(split.train.size(), fractions[pi]);
          if (want > trained_attack) {
            filter.train_spam_tokens(
                attack_tokens,
                static_cast<std::uint32_t>(want - trained_attack));
            trained_attack = want;
          }

          // Dynamic thresholds from a half/half split of the poisoned
          // training set.
          std::vector<core::SpamBatch> batches;
          if (trained_attack > 0) {
            batches.push_back(
                {attack_tokens, static_cast<std::uint32_t>(trained_attack)});
          }
          std::vector<core::ThresholdPair> pairs(n_variants);
          for (std::size_t vi = 0; vi < n_variants; ++vi) {
            util::Rng split_rng = rng.fork(17 * (pi + 1) + vi);
            pairs[vi] = core::compute_dynamic_thresholds(
                tokenized, split.train, batches, base.filter,
                config.variants[vi], split_rng);
            local_thresholds[pi][vi] = pairs[vi];
          }

          // Score the test fold once; apply every cutoff pair.
          for (std::size_t i : split.test) {
            const auto& item = tokenized.items[i];
            const double score =
                filter.classify_tokens(item.tokens).score;
            local_plain[pi].add(
                item.label,
                filter.classifier().verdict_for(score));
            for (std::size_t vi = 0; vi < n_variants; ++vi) {
              local_defended[pi][vi].add(
                  item.label,
                  spambayes::Classifier::verdict_for(
                      score, pairs[vi].theta0, pairs[vi].theta1));
            }
          }
        }

        std::lock_guard<std::mutex> lock(merge_mutex);
        for (std::size_t pi = 0; pi < fractions.size(); ++pi) {
          points[pi].no_defense.merge(local_plain[pi]);
          for (std::size_t vi = 0; vi < n_variants; ++vi) {
            points[pi].defended[vi].merge(local_defended[pi][vi]);
            threshold_sums[pi][vi].theta0 += local_thresholds[pi][vi].theta0;
            threshold_sums[pi][vi].theta1 += local_thresholds[pi][vi].theta1;
          }
        }
      },
      base.threads);

  const std::size_t train_size = folds.front().train.size();
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    points[pi].attack_messages =
        core::attack_message_count(train_size, fractions[pi]);
    for (std::size_t vi = 0; vi < n_variants; ++vi) {
      points[pi].mean_thresholds[vi].theta0 =
          threshold_sums[pi][vi].theta0 / static_cast<double>(folds.size());
      points[pi].mean_thresholds[vi].theta1 =
          threshold_sums[pi][vi].theta1 / static_cast<double>(folds.size());
    }
  }
  return points;
}

}  // namespace sbx::eval
