// Figure 5 driver: dynamic threshold defense vs. the dictionary attack.
#include <algorithm>

#include "core/attack_math.h"
#include "eval/experiments.h"
#include "eval/runner.h"

namespace sbx::eval {
namespace {

/// One fold's measurements across every (fraction, variant) cell.
struct ThresholdFoldResult {
  std::vector<ConfusionMatrix> plain;  // per fraction
  std::vector<std::vector<ConfusionMatrix>> defended;
  std::vector<std::vector<core::ThresholdPair>> thresholds;
};

}  // namespace

std::vector<ThresholdCurvePoint> run_threshold_defense_curve(
    const corpus::TrecLikeGenerator& gen, const PoisonSpec& spec,
    const ThresholdDefenseConfig& config) {
  const DictionaryCurveConfig& base = config.base;
  Runner runner(base.seed, base.threads);

  const std::size_t pool_size =
      base.training_set_size * base.folds / (base.folds - 1);
  util::Rng corpus_rng = runner.fork(1);
  const corpus::Dataset dataset =
      gen.sample_mailbox(pool_size, base.spam_fraction, corpus_rng);
  const spambayes::Tokenizer tokenizer(base.filter.tokenizer);
  const corpus::TokenizedDataset tokenized =
      corpus::tokenize_dataset(dataset, tokenizer);
  const spambayes::TokenIdSet attack_ids = spambayes::unique_token_ids(
      tokenizer.tokenize_ids(spec.message));
  const bool train_as_spam = spec.train_as == corpus::TrueLabel::spam;

  util::Rng fold_rng = runner.fork(2);
  const std::vector<corpus::FoldSplit> folds =
      corpus::k_fold_splits(tokenized.size(), base.folds, fold_rng);

  std::vector<double> fractions = base.attack_fractions;
  std::sort(fractions.begin(), fractions.end());
  fractions.insert(fractions.begin(), 0.0);

  const std::size_t n_variants = config.variants.size();
  std::vector<ThresholdCurvePoint> points(fractions.size());
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    points[pi].attack_fraction = fractions[pi];
    points[pi].defended.resize(n_variants);
    points[pi].mean_thresholds.resize(n_variants);
  }
  // Accumulate thresholds as sums, convert to means at the end.
  std::vector<std::vector<core::ThresholdPair>> threshold_sums(
      fractions.size(), std::vector<core::ThresholdPair>(n_variants,
                                                         {0.0, 0.0}));

  runner.map_reduce(
      folds.size(), /*salt=*/3000,
      [&](std::size_t f, util::Rng& rng) {
        const corpus::FoldSplit& split = folds[f];
        spambayes::Filter filter(base.filter);
        train_on_indices(filter, tokenized, split.train);

        std::size_t trained_attack = 0;
        ThresholdFoldResult local;
        local.plain.resize(fractions.size());
        local.defended.assign(fractions.size(),
                              std::vector<ConfusionMatrix>(n_variants));
        local.thresholds.assign(fractions.size(),
                                std::vector<core::ThresholdPair>(n_variants));

        for (std::size_t pi = 0; pi < fractions.size(); ++pi) {
          const std::size_t want =
              core::attack_message_count(split.train.size(), fractions[pi]);
          if (want > trained_attack) {
            const auto copies =
                static_cast<std::uint32_t>(want - trained_attack);
            if (train_as_spam) {
              filter.train_spam_ids(attack_ids, copies);
            } else {
              filter.train_ham_ids(attack_ids, copies);
            }
            trained_attack = want;
          }

          // Dynamic thresholds from a half/half split of the poisoned
          // training set. Ham-labeled poison is invisible to the
          // derivation (it never sits in the spam folder the defense
          // re-scores), so only spam-labeled copies form a batch.
          std::vector<core::SpamBatch> batches;
          if (train_as_spam && trained_attack > 0) {
            batches.push_back(
                {attack_ids, static_cast<std::uint32_t>(trained_attack)});
          }
          std::vector<core::ThresholdPair> pairs(n_variants);
          for (std::size_t vi = 0; vi < n_variants; ++vi) {
            util::Rng split_rng = rng.fork(17 * (pi + 1) + vi);
            pairs[vi] = core::compute_dynamic_thresholds(
                tokenized, split.train, batches, base.filter,
                config.variants[vi], split_rng);
            local.thresholds[pi][vi] = pairs[vi];
          }

          // Score the test fold once (batch path, zero per-message
          // allocation); apply every cutoff pair to each score.
          filter.classify_batch(
              split.test.size(),
              [&](std::size_t i) -> const spambayes::TokenIdList& {
                return tokenized.items[split.test[i]].ids;
              },
              [&](std::size_t i, const spambayes::BatchScore& scored) {
                const auto& item = tokenized.items[split.test[i]];
                local.plain[pi].add(
                    item.label,
                    filter.classifier().verdict_for(scored.score));
                for (std::size_t vi = 0; vi < n_variants; ++vi) {
                  local.defended[pi][vi].add(
                      item.label,
                      spambayes::Classifier::verdict_for(
                          scored.score, pairs[vi].theta0, pairs[vi].theta1));
                }
              });
        }
        return local;
      },
      [&](std::size_t, ThresholdFoldResult local) {
        for (std::size_t pi = 0; pi < fractions.size(); ++pi) {
          points[pi].no_defense.merge(local.plain[pi]);
          for (std::size_t vi = 0; vi < n_variants; ++vi) {
            points[pi].defended[vi].merge(local.defended[pi][vi]);
            threshold_sums[pi][vi].theta0 += local.thresholds[pi][vi].theta0;
            threshold_sums[pi][vi].theta1 += local.thresholds[pi][vi].theta1;
          }
        }
      });

  const std::size_t train_size = folds.front().train.size();
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    points[pi].attack_messages =
        core::attack_message_count(train_size, fractions[pi]);
    for (std::size_t vi = 0; vi < n_variants; ++vi) {
      points[pi].mean_thresholds[vi].theta0 =
          threshold_sums[pi][vi].theta0 / static_cast<double>(folds.size());
      points[pi].mean_thresholds[vi].theta1 =
          threshold_sums[pi][vi].theta1 / static_cast<double>(folds.size());
    }
  }
  return points;
}

}  // namespace sbx::eval
