// sbx/eval/experiment.h
//
// The declarative experiment API. Every driver in the evaluation harness
// (dictionary, focused, RONI, threshold, retraining, the extension
// attacks) is exposed as an eval::Experiment: a name, a typed config
// schema with Table-1 defaults, and a run() that returns a uniform
// ResultDoc. Experiments are looked up through eval::Registry (registry.h)
// and executed one config at a time (`sbx_experiments run`) or as a
// cross-product of config axes (`sbx_experiments sweep`, sweep.h).
//
// Config values are carried as validated strings: every value is parsed
// against its declared ParamType when set, so an invalid override fails at
// the API boundary with a message naming the key — never silently as 0
// (the std::atoll failure mode the bench flags used to have).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "eval/result_doc.h"

namespace sbx::eval {

// ---------------------------------------------------------------------------
// Strict scalar parsing (shared with the CLI and the bench flag parser).
// ---------------------------------------------------------------------------

/// Parses a non-negative integer; the whole string must be consumed.
/// Throws sbx::ParseError naming `what` on any malformed input.
std::uint64_t parse_uint(std::string_view text, std::string_view what);

/// Parses a finite double; the whole string must be consumed.
double parse_double(std::string_view text, std::string_view what);

/// Accepts true/false/1/0/yes/no/on/off (ASCII case-insensitive).
bool parse_bool(std::string_view text, std::string_view what);

// ---------------------------------------------------------------------------
// Config schema.
// ---------------------------------------------------------------------------

/// Value type of one config parameter. List values are comma- or
/// semicolon-separated ("0.01,0.05" or "0.01;0.05"); sweep axes split
/// their value lists on commas, so a swept list-typed parameter uses ';'
/// inside each axis value.
enum class ParamType { kUInt, kDouble, kBool, kString, kUIntList, kDoubleList };

std::string_view to_string(ParamType type);

/// One declared parameter: key, type, canonical default, one-line help.
struct ParamSpec {
  std::string key;
  ParamType type = ParamType::kString;
  std::string default_value;
  std::string description;
};

/// Ordered parameter declarations for one experiment. Declaration order is
/// the canonical order (describe output, ResultDoc config serialization).
class ConfigSchema {
 public:
  /// Declares a parameter; validates `default_value` against `type`.
  /// Throws sbx::InvalidArgument on duplicate keys or invalid defaults.
  ConfigSchema& add(std::string key, ParamType type,
                    std::string default_value, std::string description);

  /// nullptr when the key is not declared.
  const ParamSpec* find(std::string_view key) const;

  const std::vector<ParamSpec>& params() const { return params_; }

 private:
  std::vector<ParamSpec> params_;
};

// ---------------------------------------------------------------------------
// A resolved configuration.
// ---------------------------------------------------------------------------

/// Schema defaults plus overrides. Copyable (sweep expansion clones the
/// base config per grid point); the schema must outlive the config —
/// experiment schemas live in the process-wide registry, which does.
class Config {
 public:
  explicit Config(const ConfigSchema* schema);

  /// Overrides one parameter; throws sbx::InvalidArgument for unknown keys
  /// and sbx::ParseError for values invalid under the declared type.
  void set(std::string_view key, std::string_view value);

  /// Applies "key=value" (the CLI override form).
  void set_key_value(std::string_view assignment);

  // Typed getters; throw sbx::InvalidArgument when the key is not declared
  // with the requested type (a programming error in an adapter).
  std::uint64_t get_uint(std::string_view key) const;
  double get_double(std::string_view key) const;
  bool get_bool(std::string_view key) const;
  std::string get_string(std::string_view key) const;
  std::vector<std::uint64_t> get_uint_list(std::string_view key) const;
  std::vector<double> get_double_list(std::string_view key) const;

  /// True when the schema declares `key`.
  bool has(std::string_view key) const { return schema_->find(key) != nullptr; }

  /// Resolved (key, value) pairs in schema order.
  std::vector<std::pair<std::string, std::string>> items() const;

  const ConfigSchema& schema() const { return *schema_; }

 private:
  const std::string& raw(std::string_view key, ParamType expected) const;

  const ConfigSchema* schema_;
  std::vector<std::string> values_;  // parallel to schema params
};

// ---------------------------------------------------------------------------
// The experiment interface.
// ---------------------------------------------------------------------------

/// Execution context passed to Experiment::run. `threads` is the
/// per-experiment Runner thread request (0 = hardware concurrency, 1 =
/// inline; the shared pool bounds real parallelism either way). `progress`
/// receives human-readable status lines; experiments must not write to
/// stdout directly.
struct RunContext {
  std::size_t threads = 0;
  std::function<void(const std::string&)> progress;

  void note(const std::string& line) const {
    if (progress) progress(line);
  }
};

/// One registered experiment driver.
class Experiment {
 public:
  virtual ~Experiment() = default;

  /// Registry key, e.g. "dictionary" (lowercase, '-'-separated).
  virtual std::string name() const = 0;

  /// One-line summary for `sbx_experiments list`.
  virtual std::string description() const = 0;

  /// What part of the paper the default config reproduces.
  virtual std::string paper_ref() const = 0;

  virtual const ConfigSchema& schema() const = 0;

  /// Reduced-scale overrides applied by --quick (keys must exist in the
  /// schema). Defaults to none.
  virtual std::vector<std::pair<std::string, std::string>> quick_overrides()
      const {
    return {};
  }

  /// Executes one fully resolved config. Deterministic in the config (the
  /// "seed" parameter drives all randomness); ctx.threads changes
  /// wall-clock time only, never the returned document.
  virtual ResultDoc run(const Config& config, const RunContext& ctx) const = 0;

  /// A config holding this experiment's schema defaults.
  Config default_config() const { return Config(&schema()); }
};

/// The one config-resolution policy shared by `sbx_experiments run/sweep`
/// and the bench wrappers (which must stay byte-identical to the CLI):
/// schema defaults, then the experiment's --quick overrides (if `quick`),
/// then the "key=value" `overrides` in order, then `seed` onto the "seed"
/// key (when present in the schema; an explicit 0 is honored).
Config resolve_config(const Experiment& experiment, bool quick,
                      const std::vector<std::string>& overrides = {},
                      std::optional<std::uint64_t> seed = std::nullopt);

}  // namespace sbx::eval
