// sbx/eval/experiment.h
//
// The declarative experiment API. Every driver in the evaluation harness
// (dictionary, focused, RONI, threshold, retraining, the extension
// attacks) is exposed as an eval::Experiment: a name, a typed config
// schema with Table-1 defaults, and a run() that returns a uniform
// ResultDoc. Experiments are looked up through eval::Registry (registry.h)
// and executed one config at a time (`sbx_experiments run`) or as a
// cross-product of config axes (`sbx_experiments sweep`, sweep.h).
//
// Config values are carried as validated strings: every value is parsed
// against its declared ParamType when set, so an invalid override fails at
// the API boundary with a message naming the key — never silently as 0
// (the std::atoll failure mode the bench flags used to have).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "eval/result_doc.h"
#include "util/config.h"

namespace sbx::eval {

// ---------------------------------------------------------------------------
// Config machinery. Lives in util/config.h (so core::Attack can declare
// schemas too — core sits below eval in the library stack); re-exported
// here under the eval:: names the experiment layer has always used.
// ---------------------------------------------------------------------------

using util::parse_bool;
using util::parse_double;
using util::parse_uint;
using util::to_string;

using ParamType = util::ParamType;
using ParamSpec = util::ParamSpec;
using ConfigSchema = util::ConfigSchema;
using Config = util::Config;

// ---------------------------------------------------------------------------
// The experiment interface.
// ---------------------------------------------------------------------------

/// Execution context passed to Experiment::run. `threads` is the
/// per-experiment Runner thread request (0 = hardware concurrency, 1 =
/// inline; the shared pool bounds real parallelism either way). `progress`
/// receives human-readable status lines; experiments must not write to
/// stdout directly.
struct RunContext {
  std::size_t threads = 0;
  std::function<void(const std::string&)> progress;

  void note(const std::string& line) const {
    if (progress) progress(line);
  }
};

/// One registered experiment driver.
class Experiment {
 public:
  virtual ~Experiment() = default;

  /// Registry key, e.g. "dictionary" (lowercase, '-'-separated).
  virtual std::string name() const = 0;

  /// One-line summary for `sbx_experiments list`.
  virtual std::string description() const = 0;

  /// What part of the paper the default config reproduces.
  virtual std::string paper_ref() const = 0;

  virtual const ConfigSchema& schema() const = 0;

  /// Reduced-scale overrides applied by --quick (keys must exist in the
  /// schema). Defaults to none.
  virtual std::vector<std::pair<std::string, std::string>> quick_overrides()
      const {
    return {};
  }

  /// Executes one fully resolved config. Deterministic in the config (the
  /// "seed" parameter drives all randomness); ctx.threads changes
  /// wall-clock time only, never the returned document.
  virtual ResultDoc run(const Config& config, const RunContext& ctx) const = 0;

  /// A config holding this experiment's schema defaults.
  Config default_config() const { return Config(&schema()); }
};

/// The one config-resolution policy shared by `sbx_experiments run/sweep`
/// and the bench wrappers (which must stay byte-identical to the CLI):
/// schema defaults, then the experiment's --quick overrides (if `quick`),
/// then the "key=value" `overrides` in order, then `seed` onto the "seed"
/// key (when present in the schema; an explicit 0 is honored).
Config resolve_config(const Experiment& experiment, bool quick,
                      const std::vector<std::string>& overrides = {},
                      std::optional<std::uint64_t> seed = std::nullopt);

}  // namespace sbx::eval
