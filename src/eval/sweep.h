// sbx/eval/sweep.h
//
// Cross-product sweeps over experiment configs: a base Config plus one or
// more axes (key, value list) expands into the full grid, and every grid
// point runs as one top-level trial through the deterministic eval::Runner
// contract — trial order is the row-major expansion order (first axis
// outermost), per-trial RNG streams are pre-forked in program order, and
// results are merged back in config order. Trials execute on the shared
// util::ThreadPool, the same pool the per-config fold/repetition loops
// use, so sweep x folds nesting shares one set of workers (the pool's
// run-inline-while-waiting policy makes the nesting deadlock-free).
//
// Determinism: each grid config carries its own "seed" parameter, every
// experiment is thread-invariant by contract, and documents are serialized
// from ordered structures — so a sweep's CSV/JSON output is byte-identical
// at any thread count (test-enforced in tests/eval/sweep_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "util/table.h"

namespace sbx::eval {

/// One sweep axis: every value is applied to `key` (validated against the
/// experiment schema). Axis values for list-typed parameters use ';' as
/// the inner separator ("0.01;0.05" is one value = a two-element list).
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Parses "key=v1,v2,..." into an axis. Throws sbx::InvalidArgument on a
/// missing '=' or an empty value list.
SweepAxis parse_sweep_axis(std::string_view spec);

struct SweepOptions {
  /// Concurrent sweep trials (0 = hardware concurrency, 1 = sequential).
  std::size_t threads = 0;
  /// Runner thread request forwarded to each experiment (RunContext
  /// threads). Defaults to 1: with the sweep already fanning out whole
  /// configs, inline per-config execution keeps the task count sane; the
  /// shared pool bounds total parallelism either way.
  std::size_t experiment_threads = 1;
  /// Per-trial progress: called with (config index, total) as trials
  /// complete-merge on the calling thread, in config order.
  std::function<void(std::size_t, std::size_t)> progress;
};

struct SweepResult {
  const Experiment* experiment = nullptr;
  std::vector<SweepAxis> axes;        // as requested (validated)
  std::vector<Config> configs;        // full grid, row-major
  std::vector<ResultDoc> docs;        // parallel to configs

  /// One row per config: the axis values plus every scalar metric of that
  /// config's document (metric set taken from the first document).
  util::Table summary() const;
};

/// Expands the grid without running it (exposed for tests and dry runs).
/// Axis keys/values are validated against the base config's schema.
std::vector<Config> expand_sweep(const Config& base,
                                 const std::vector<SweepAxis>& axes);

/// Expands and executes the grid. Throws on unknown axis keys or invalid
/// axis values before any trial runs.
SweepResult run_sweep(const Experiment& experiment, const Config& base,
                      const std::vector<SweepAxis>& axes,
                      const SweepOptions& options = {});

}  // namespace sbx::eval
