#include "eval/runner.h"

#include <algorithm>
#include <exception>
#include <future>
#include <thread>

namespace sbx::eval {

Runner::Runner(std::uint64_t seed, std::size_t threads)
    : master_(seed),
      threads_(threads != 0
                   ? threads
                   : std::max<std::size_t>(
                         1, std::thread::hardware_concurrency())) {}

std::vector<util::Rng> Runner::fork_streams(std::uint64_t salt,
                                            std::size_t n) {
  std::vector<util::Rng> rngs;
  rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rngs.push_back(master_.fork(salt + i));
  }
  return rngs;
}

void Runner::dispatch(std::size_t n,
                      const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (std::min(threads_, n) <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(threads_);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool_->submit([i, &body] { body(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sbx::eval
