#include "eval/runner.h"

#include <algorithm>
#include <future>
#include <thread>

namespace sbx::eval {

Runner::Runner(std::uint64_t seed, std::size_t threads)
    : master_(seed),
      threads_(threads != 0
                   ? threads
                   : std::max<std::size_t>(
                         1, std::thread::hardware_concurrency())) {}

std::vector<util::Rng> Runner::fork_streams(std::uint64_t salt,
                                            std::size_t n) {
  std::vector<util::Rng> rngs;
  rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rngs.push_back(master_.fork(salt + i));
  }
  return rngs;
}

void Runner::dispatch(std::size_t n,
                      const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (std::min(threads_, n) <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  util::ThreadPool& pool = util::ThreadPool::shared();
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([i, &body] { body(i); }));
  }
  pool.wait(futures);  // helps run tasks inline; rethrows the first error
}

}  // namespace sbx::eval
