#include "eval/result_doc.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/error.h"

namespace sbx::eval {

util::Table& ResultDoc::add_table(std::string name,
                                  std::vector<std::string> headers) {
  tables.push_back(NamedTable{std::move(name), util::Table(std::move(headers))});
  return tables.back().table;
}

const util::Table& ResultDoc::table(std::string_view name) const {
  for (const auto& t : tables) {
    if (t.name == name) return t.table;
  }
  throw InvalidArgument("ResultDoc::table: no table named '" +
                        std::string(name) + "' in experiment '" + experiment +
                        "'");
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // std::to_chars: shortest round-trip representation, and — unlike
  // printf %g — independent of the process locale (LC_NUMERIC would turn
  // 0.5 into "0,5" and break both JSON validity and byte determinism).
  char buf[40];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;  // 40 bytes always suffice for a double
  return std::string(buf, ptr);
}

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void append_string_array(std::string& out,
                         const std::vector<std::string>& items) {
  out.push_back('[');
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json_quote(items[i]);
  }
  out.push_back(']');
}

void append_number_array(std::string& out, const std::vector<double>& items) {
  out.push_back('[');
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json_number(items[i]);
  }
  out.push_back(']');
}

}  // namespace

std::string ResultDoc::to_json() const {
  std::string out;
  out += "{\n  \"experiment\": ";
  out += json_quote(experiment);
  out += ",\n  \"attack\": {\"name\": ";
  out += json_quote(attack_name);
  out += ", \"taxonomy\": ";
  out += json_quote(attack_taxonomy);
  out += "},\n  \"config\": {";
  for (std::size_t i = 0; i < config.size(); ++i) {
    out += i > 0 ? ", " : "";
    out += json_quote(config[i].first);
    out += ": ";
    out += json_quote(config[i].second);
  }
  out += "},\n  \"metrics\": {";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out += i > 0 ? ", " : "";
    out += json_quote(metrics[i].first);
    out += ": ";
    out += json_number(metrics[i].second);
  }
  out += "},\n  \"tables\": {";
  for (std::size_t i = 0; i < tables.size(); ++i) {
    out += i > 0 ? ",\n    " : "";
    out += json_quote(tables[i].name);
    out += ": {\"headers\": ";
    append_string_array(out, tables[i].table.headers());
    out += ", \"rows\": [";
    const auto& rows = tables[i].table.rows();
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r > 0) out.push_back(',');
      out += "\n      ";
      append_string_array(out, rows[r]);
    }
    out += rows.empty() ? "]}" : "\n    ]}";
  }
  out += "},\n  \"series\": [";
  for (std::size_t i = 0; i < series.size(); ++i) {
    out += i > 0 ? ",\n    " : "";
    out += "{\"name\": ";
    out += json_quote(series[i].name);
    out += ", \"x\": ";
    append_number_array(out, series[i].x);
    out += ", \"y\": ";
    append_number_array(out, series[i].y);
    out += "}";
  }
  out += "],\n  \"report\": ";
  append_string_array(out, report);
  out += "\n}\n";
  return out;
}

void ResultDoc::write_json(const std::string& path) const {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) throw IoError("ResultDoc::write_json: mkdir failed for " + path);
  }
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw IoError("ResultDoc::write_json: cannot open " + path);
  f << to_json();
  if (!f) throw IoError("ResultDoc::write_json: write failed for " + path);
}

std::vector<std::string> ResultDoc::write_csv(const std::string& dir,
                                              const std::string& prefix) const {
  std::vector<std::string> paths;
  for (const auto& named : tables) {
    std::string stem = prefix;
    if (!named.name.empty() && named.name != prefix &&
        !(tables.size() == 1 && named.name == experiment)) {
      stem += "_" + named.name;
    }
    std::string path = dir + "/" + stem + ".csv";
    named.table.write_csv(path);
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace sbx::eval
