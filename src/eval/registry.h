// sbx/eval/registry.h
//
// Name -> Experiment lookup for the experiment harness. The registry is
// the single catalogue behind `sbx_experiments list/describe/run/sweep`
// and the bench entry points; adding experiment #10 means registering one
// adapter here instead of hand-rolling bench binary #20.
//
// Built-in experiments are registered explicitly (builtin_registry(), not
// static initializers: sbx is consumed as static libraries, where
// unreferenced self-registering objects are silently dropped by the
// linker).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "eval/experiment.h"

namespace sbx::eval {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers an experiment; throws sbx::InvalidArgument on duplicate
  /// names.
  void add(std::unique_ptr<Experiment> experiment);

  /// nullptr when no experiment has this name.
  const Experiment* find(std::string_view name) const;

  /// Lookup that throws sbx::InvalidArgument listing the known names.
  const Experiment& get(std::string_view name) const;

  /// All experiments, sorted by name.
  std::vector<const Experiment*> experiments() const;

 private:
  std::vector<std::unique_ptr<Experiment>> experiments_;
};

/// The process-wide registry holding every built-in experiment driver
/// (dictionary, focused-knowledge, focused-size, token-shift, roni,
/// threshold, retraining, good-word, ham-labeled). Thread-safe: built once
/// on first use.
const Registry& builtin_registry();

/// Registers the built-in experiments into `registry` (exposed for tests
/// that assemble their own registries).
void register_builtin_experiments(Registry& registry);

}  // namespace sbx::eval
