// §5.1 driver: the RONI defense against dictionary-attack and non-attack
// spam queries.
#include <mutex>

#include "eval/experiments.h"
#include "util/thread_pool.h"

namespace sbx::eval {

RoniExperimentResult run_roni_experiment(
    const corpus::TrecLikeGenerator& gen,
    const std::vector<const core::DictionaryAttack*>& attacks,
    const RoniExperimentConfig& config) {
  util::Rng master(config.seed);

  util::Rng pool_rng = master.fork(1);
  const corpus::Dataset pool_dataset =
      gen.sample_mailbox(config.pool_size, config.spam_fraction, pool_rng);
  const spambayes::Tokenizer tokenizer(config.filter.tokenizer);
  const corpus::TokenizedDataset pool =
      corpus::tokenize_dataset(pool_dataset, tokenizer);

  const core::RoniDefense defense(config.roni, config.filter);

  RoniExperimentResult result;
  result.nonattack_spam.name = "non-attack spam";

  // --- non-attack spam queries: fresh spam emails, one assessment each ---
  {
    util::Rng query_rng = master.fork(2);
    std::vector<spambayes::TokenSet> queries;
    queries.reserve(config.nonattack_queries);
    for (std::size_t i = 0; i < config.nonattack_queries; ++i) {
      queries.push_back(spambayes::unique_tokens(
          tokenizer.tokenize(gen.generate_spam(query_rng))));
    }
    std::vector<util::Rng> rngs;
    rngs.reserve(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      rngs.push_back(query_rng.fork(i));
    }
    std::mutex merge_mutex;
    util::parallel_for(
        queries.size(),
        [&](std::size_t i) {
          util::Rng rng = rngs[i];
          const core::RoniAssessment a = defense.assess(queries[i], pool, rng);
          std::lock_guard<std::mutex> lock(merge_mutex);
          result.nonattack_spam.impact.add(a.mean_ham_as_ham_decrease);
          result.nonattack_spam.assessed += 1;
          result.nonattack_spam.rejected += a.rejected ? 1 : 0;
        },
        config.threads);
  }

  // --- dictionary attack variants, `attack_repetitions` assessments each ---
  for (std::size_t ai = 0; ai < attacks.size(); ++ai) {
    const core::DictionaryAttack& attack = *attacks[ai];
    RoniVariantResult variant;
    variant.name = attack.name();
    const spambayes::TokenSet attack_tokens = spambayes::unique_tokens(
        tokenizer.tokenize(attack.attack_message()));

    util::Rng attack_rng = master.fork(100 + ai);
    std::vector<util::Rng> rngs;
    rngs.reserve(config.attack_repetitions);
    for (std::size_t i = 0; i < config.attack_repetitions; ++i) {
      rngs.push_back(attack_rng.fork(i));
    }
    std::mutex merge_mutex;
    util::parallel_for(
        config.attack_repetitions,
        [&](std::size_t i) {
          util::Rng rng = rngs[i];
          const core::RoniAssessment a =
              defense.assess(attack_tokens, pool, rng);
          std::lock_guard<std::mutex> lock(merge_mutex);
          variant.impact.add(a.mean_ham_as_ham_decrease);
          variant.assessed += 1;
          variant.rejected += a.rejected ? 1 : 0;
        },
        config.threads);
    result.attack_variants.push_back(std::move(variant));
  }
  return result;
}

}  // namespace sbx::eval
