// §5.1 driver: the RONI defense against dictionary-attack and non-attack
// spam queries.
#include "eval/experiments.h"
#include "eval/runner.h"

namespace sbx::eval {
namespace {

/// One RONI assessment outcome, merged in query order by the Runner.
struct AssessmentOutcome {
  double impact = 0.0;
  bool rejected = false;
};

void merge_outcome(RoniVariantResult& variant, const AssessmentOutcome& o) {
  variant.impact.add(o.impact);
  variant.assessed += 1;
  variant.rejected += o.rejected ? 1 : 0;
}

}  // namespace

RoniExperimentResult run_roni_experiment(const corpus::TrecLikeGenerator& gen,
                                         const std::vector<RoniQuery>& queries,
                                         const RoniExperimentConfig& config) {
  Runner runner(config.seed, config.threads);

  util::Rng pool_rng = runner.fork(1);
  const corpus::Dataset pool_dataset =
      gen.sample_mailbox(config.pool_size, config.spam_fraction, pool_rng);
  const spambayes::Tokenizer tokenizer(config.filter.tokenizer);
  const corpus::TokenizedDataset pool =
      corpus::tokenize_dataset(pool_dataset, tokenizer);

  const core::RoniDefense defense(config.roni, config.filter);

  RoniExperimentResult result;
  result.nonattack_spam.name = "non-attack spam";

  // --- non-attack spam queries: fresh spam emails, one assessment each ---
  {
    util::Rng query_rng = runner.fork(2);
    std::vector<spambayes::TokenIdSet> spam_queries;
    spam_queries.reserve(config.nonattack_queries);
    for (std::size_t i = 0; i < config.nonattack_queries; ++i) {
      spam_queries.push_back(spambayes::unique_token_ids(
          tokenizer.tokenize_ids(gen.generate_spam(query_rng))));
    }
    runner.map_reduce(
        spam_queries.size(), query_rng,
        [&](std::size_t i, util::Rng& rng) {
          const core::RoniAssessment a =
              defense.assess(spam_queries[i], pool, rng);
          return AssessmentOutcome{a.mean_ham_as_ham_decrease, a.rejected};
        },
        [&](std::size_t, AssessmentOutcome o) {
          merge_outcome(result.nonattack_spam, o);
        });
  }

  // --- attack queries, `attack_repetitions` assessments each ---
  for (std::size_t ai = 0; ai < queries.size(); ++ai) {
    const RoniQuery& query = queries[ai];
    RoniVariantResult variant;
    variant.name = query.name;
    const spambayes::TokenIdSet attack_ids = spambayes::unique_token_ids(
        tokenizer.tokenize_ids(query.message));

    util::Rng attack_rng = runner.fork(100 + ai);
    runner.map_reduce(
        config.attack_repetitions, attack_rng,
        [&](std::size_t, util::Rng& rng) {
          const core::RoniAssessment a =
              defense.assess(attack_ids, pool, rng);
          return AssessmentOutcome{a.mean_ham_as_ham_decrease, a.rejected};
        },
        [&](std::size_t, AssessmentOutcome o) { merge_outcome(variant, o); });
    result.attack_variants.push_back(std::move(variant));
  }
  return result;
}

RoniExperimentResult run_roni_experiment(
    const corpus::TrecLikeGenerator& gen,
    const std::vector<const core::DictionaryAttack*>& attacks,
    const RoniExperimentConfig& config) {
  std::vector<RoniQuery> queries;
  queries.reserve(attacks.size());
  for (const core::DictionaryAttack* attack : attacks) {
    queries.push_back(RoniQuery{attack->name(), attack->attack_message()});
  }
  return run_roni_experiment(gen, queries, config);
}

}  // namespace sbx::eval
