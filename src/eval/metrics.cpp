#include "eval/metrics.h"

#include <sstream>

namespace sbx::eval {
namespace {

std::size_t truth_index(corpus::TrueLabel t) {
  return t == corpus::TrueLabel::ham ? 0 : 1;
}

std::size_t verdict_index(spambayes::Verdict v) {
  switch (v) {
    case spambayes::Verdict::ham:
      return 0;
    case spambayes::Verdict::unsure:
      return 1;
    case spambayes::Verdict::spam:
      return 2;
  }
  return 1;
}

}  // namespace

void ConfusionMatrix::add(corpus::TrueLabel truth, spambayes::Verdict verdict,
                          std::size_t count) {
  counts_[truth_index(truth)][verdict_index(verdict)] += count;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  for (int t = 0; t < 2; ++t) {
    for (int v = 0; v < 3; ++v) counts_[t][v] += other.counts_[t][v];
  }
}

std::size_t ConfusionMatrix::count(corpus::TrueLabel truth,
                                   spambayes::Verdict verdict) const {
  return counts_[truth_index(truth)][verdict_index(verdict)];
}

std::size_t ConfusionMatrix::total(corpus::TrueLabel truth) const {
  const auto& row = counts_[truth_index(truth)];
  return row[0] + row[1] + row[2];
}

std::size_t ConfusionMatrix::total() const {
  return total(corpus::TrueLabel::ham) + total(corpus::TrueLabel::spam);
}

double ConfusionMatrix::rate(corpus::TrueLabel truth,
                             spambayes::Verdict verdict) const {
  std::size_t denom = total(truth);
  if (denom == 0) return 0.0;
  return static_cast<double>(count(truth, verdict)) /
         static_cast<double>(denom);
}

double ConfusionMatrix::ham_as_spam_rate() const {
  return rate(corpus::TrueLabel::ham, spambayes::Verdict::spam);
}

double ConfusionMatrix::ham_as_unsure_rate() const {
  return rate(corpus::TrueLabel::ham, spambayes::Verdict::unsure);
}

double ConfusionMatrix::ham_misclassified_rate() const {
  return ham_as_spam_rate() + ham_as_unsure_rate();
}

double ConfusionMatrix::spam_as_ham_rate() const {
  return rate(corpus::TrueLabel::spam, spambayes::Verdict::ham);
}

double ConfusionMatrix::spam_as_unsure_rate() const {
  return rate(corpus::TrueLabel::spam, spambayes::Verdict::unsure);
}

double ConfusionMatrix::spam_misclassified_rate() const {
  return spam_as_ham_rate() + spam_as_unsure_rate();
}

double ConfusionMatrix::accuracy() const {
  std::size_t denom = total();
  if (denom == 0) return 0.0;
  std::size_t correct = count(corpus::TrueLabel::ham, spambayes::Verdict::ham) +
                        count(corpus::TrueLabel::spam,
                              spambayes::Verdict::spam);
  return static_cast<double>(correct) / static_cast<double>(denom);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream out;
  out << "            ham   unsure  spam\n";
  out << "true ham   " << count(corpus::TrueLabel::ham, spambayes::Verdict::ham)
      << "  " << count(corpus::TrueLabel::ham, spambayes::Verdict::unsure)
      << "  " << count(corpus::TrueLabel::ham, spambayes::Verdict::spam)
      << "\n";
  out << "true spam  "
      << count(corpus::TrueLabel::spam, spambayes::Verdict::ham) << "  "
      << count(corpus::TrueLabel::spam, spambayes::Verdict::unsure) << "  "
      << count(corpus::TrueLabel::spam, spambayes::Verdict::spam) << "\n";
  return out.str();
}

}  // namespace sbx::eval
