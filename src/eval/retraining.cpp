#include "eval/retraining.h"

#include <algorithm>

#include "util/error.h"

namespace sbx::eval {
namespace {

struct LabeledBatch {
  core::SpamBatch batch;
  corpus::TrueLabel label = corpus::TrueLabel::spam;
};

struct WeekData {
  std::vector<std::size_t> clean_indices;  // into the accumulated dataset
  std::vector<LabeledBatch> attacks;       // admitted attack batches
};

}  // namespace

std::vector<WeekReport> run_retraining_timeline(
    const corpus::TrecLikeGenerator& gen,
    const std::vector<AttackInjection>& injections,
    const RetrainingConfig& config) {
  if (config.weeks == 0 || config.messages_per_week == 0) {
    throw InvalidArgument("run_retraining_timeline: empty timeline");
  }
  if (!config.cumulative && config.window_weeks == 0) {
    throw InvalidArgument("run_retraining_timeline: zero-width window");
  }

  util::Rng master(config.seed);
  const spambayes::Tokenizer tokenizer(config.filter.tokenizer);
  const core::RoniDefense roni(config.roni, config.filter);

  corpus::TokenizedDataset all_clean;  // grows week by week
  std::vector<WeekData> weeks(config.weeks);
  std::vector<WeekReport> reports;
  reports.reserve(config.weeks);
  std::vector<spambayes::TokenIdSet> fresh_ids;  // reused across weeks

  // BadNets trigger (union across injections; normally one injection).
  spambayes::TokenIdList all_trigger_ids;
  for (const AttackInjection& inj : injections) {
    all_trigger_ids.insert(all_trigger_ids.end(), inj.trigger_ids.begin(),
                           inj.trigger_ids.end());
  }
  const spambayes::TokenIdSet trigger_ids =
      spambayes::unique_token_ids(std::move(all_trigger_ids));

  for (std::size_t week = 0; week < config.weeks; ++week) {
    WeekReport report;
    report.week = week;

    // --- inbound mail for this week ---
    util::Rng week_rng = master.fork(10'000 + week);
    corpus::Dataset inbound = gen.sample_mailbox(
        config.messages_per_week, config.spam_fraction, week_rng);
    corpus::TokenizedDataset inbound_tokens =
        corpus::tokenize_dataset(inbound, tokenizer);

    // The RONI gate measures candidates against previously admitted mail.
    const bool gate_active =
        config.roni_gate &&
        all_clean.size() >=
            config.roni.train_size + config.roni.validation_size;

    for (std::size_t i = 0; i < inbound_tokens.size(); ++i) {
      auto& item = inbound_tokens.items[i];
      if (gate_active && item.label == corpus::TrueLabel::spam) {
        util::Rng gate_rng = week_rng.fork(500 + i);
        if (roni.assess(item.ids, all_clean, gate_rng).rejected) {
          continue;  // ordinary mail rejected by the gate (false positive)
        }
      }
      weeks[week].clean_indices.push_back(all_clean.size());
      all_clean.items.push_back(std::move(item));
    }

    // --- attack injections scheduled for this week ---
    for (const AttackInjection& inj : injections) {
      if (inj.week != week || inj.copies == 0) continue;
      report.attack_offered += inj.copies;
      std::uint32_t admitted = inj.copies;
      // The gate screens the spam folder; ham-labeled poison (the §2.2
      // extension / backdoor) arrives through the ham pipeline and is
      // never assessed.
      if (gate_active && inj.label == corpus::TrueLabel::spam) {
        // All copies are identical; one assessment decides the batch.
        util::Rng gate_rng = week_rng.fork(99'000 + inj.week);
        if (roni.assess(inj.ids, all_clean, gate_rng).rejected) {
          admitted = 0;
        }
      }
      report.attack_admitted += admitted;
      if (admitted > 0) {
        weeks[week].attacks.push_back({{inj.ids, admitted}, inj.label});
      }
    }

    // --- retrain on the configured scope ---
    const std::size_t scope_begin =
        config.cumulative
            ? 0
            : week + 1 - std::min(config.window_weeks, week + 1);
    spambayes::Filter filter(config.filter);
    std::vector<std::size_t> scope_indices;
    std::vector<core::SpamBatch> scope_attacks;
    for (std::size_t w = scope_begin; w <= week; ++w) {
      for (std::size_t idx : weeks[w].clean_indices) {
        const auto& item = all_clean.items[idx];
        if (item.label == corpus::TrueLabel::spam) {
          filter.train_spam_ids(item.ids);
        } else {
          filter.train_ham_ids(item.ids);
        }
        scope_indices.push_back(idx);
      }
      for (const auto& labeled : weeks[w].attacks) {
        if (labeled.label == corpus::TrueLabel::spam) {
          filter.train_spam_ids(labeled.batch.ids, labeled.batch.copies);
          // Ham-labeled batches never sit in the spam folder, so only
          // spam-labeled ones inform the threshold re-derivation.
          scope_attacks.push_back(labeled.batch);
        } else {
          filter.train_ham_ids(labeled.batch.ids, labeled.batch.copies);
        }
        report.training_size += labeled.batch.copies;
      }
    }
    report.training_size += scope_indices.size();

    // --- per-cycle threshold re-derivation (§5.2) ---
    core::ThresholdPair thresholds{config.filter.classifier.ham_cutoff,
                                   config.filter.classifier.spam_cutoff};
    if (config.dynamic_thresholds && scope_indices.size() >= 2) {
      util::Rng split_rng = week_rng.fork(777);
      thresholds = core::compute_dynamic_thresholds(
          all_clean, scope_indices, scope_attacks, config.filter,
          config.threshold_targets, split_rng);
    }
    report.thresholds = thresholds;

    // --- measure on fresh mail ---
    util::Rng test_rng = master.fork(50'000 + week);
    corpus::Dataset fresh = gen.sample_mailbox(config.test_messages,
                                               config.spam_fraction, test_rng);
    fresh_ids.clear();
    fresh_ids.reserve(fresh.items.size());
    for (const auto& item : fresh.items) {
      fresh_ids.push_back(
          spambayes::unique_token_ids(tokenizer.tokenize_ids(item.message)));
    }
    filter.classify_batch(
        fresh_ids.size(),
        [&](std::size_t i) -> const spambayes::TokenIdList& {
          return fresh_ids[i];
        },
        [&](std::size_t i, const spambayes::BatchScore& scored) {
          report.test.add(fresh.items[i].label,
                          spambayes::Classifier::verdict_for(
                              scored.score, thresholds.theta0,
                              thresholds.theta1));
        });

    // --- BadNets leak probe: the same fresh spam, trigger-stamped ---
    if (!trigger_ids.empty()) {
      std::vector<spambayes::TokenIdSet> stamped;
      for (std::size_t i = 0; i < fresh.items.size(); ++i) {
        if (fresh.items[i].label != corpus::TrueLabel::spam) continue;
        spambayes::TokenIdList ids = fresh_ids[i];
        ids.insert(ids.end(), trigger_ids.begin(), trigger_ids.end());
        stamped.push_back(spambayes::unique_token_ids(std::move(ids)));
      }
      filter.classify_batch(
          stamped.size(),
          [&](std::size_t i) -> const spambayes::TokenIdList& {
            return stamped[i];
          },
          [&](std::size_t, const spambayes::BatchScore& scored) {
            report.trigger_probes += 1;
            report.trigger_leaked +=
                spambayes::Classifier::verdict_for(scored.score,
                                                   thresholds.theta0,
                                                   thresholds.theta1) !=
                        spambayes::Verdict::spam
                    ? 1
                    : 0;
          });
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace sbx::eval
