// sbx/eval/result_doc.h
//
// The uniform result document every eval::Experiment returns: the resolved
// config, named result tables (the paper's figures/tables as rows of
// formatted cells), scalar metrics, full-precision numeric series (for
// charts and downstream analysis — table cells are presentation-rounded),
// and a preformatted free-text report. One serializer pair — to_json() and
// per-table CSV — replaces the per-binary output conventions the bench
// drivers used to hand-roll.
//
// Determinism: every field is ordered (vectors, never hash maps) and
// numeric serialization is locale-independent, so two runs that compute
// identical results serialize to byte-identical JSON/CSV at any thread
// count. The sweep bit-identity tests rely on this.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/table.h"

namespace sbx::eval {

/// A full-precision (x, y) curve, e.g. one chart line of a figure.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;  // same length as x
};

/// Uniform experiment output.
struct ResultDoc {
  std::string experiment;
  /// The attack this run exercised: registry name (attack_registry.h) and
  /// Barreno-Nelson taxonomy coordinates. Every built-in experiment sets
  /// both (eval::tag_attack); `check_bench.py validate-resultdoc` requires
  /// them non-empty.
  std::string attack_name;
  std::string attack_taxonomy;
  /// Resolved config in schema order.
  std::vector<std::pair<std::string, std::string>> config;
  /// Scalar headline metrics in insertion order.
  std::vector<std::pair<std::string, double>> metrics;

  struct NamedTable {
    std::string name;  // CSV stem and JSON key, e.g. "curve"
    util::Table table;
  };
  std::vector<NamedTable> tables;
  std::vector<Series> series;
  /// Preformatted narrative lines (printed verbatim by the CLI/benches).
  std::vector<std::string> report;

  void add_metric(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }

  /// Appends a table and returns it for row filling.
  util::Table& add_table(std::string name, std::vector<std::string> headers);

  /// First table with this name; throws sbx::InvalidArgument if absent.
  const util::Table& table(std::string_view name) const;

  /// The whole document as a single JSON object:
  ///   {"experiment": ..., "attack": {"name": ..., "taxonomy": ...},
  ///    "config": {...}, "metrics": {...},
  ///    "tables": {name: {"headers": [...], "rows": [[...]]}},
  ///    "series": [{"name":..., "x":[...], "y":[...]}], "report": [...]}
  /// Keys preserve document order; doubles use round-trip precision; the
  /// output is byte-deterministic for equal documents.
  std::string to_json() const;

  /// Writes to_json() to `path`, creating parent directories.
  void write_json(const std::string& path) const;

  /// Writes each table as CSV to `<dir>/<prefix>_<table name>.csv`
  /// (`<dir>/<prefix>.csv` for a single table named like the experiment or
  /// empty). Returns the written paths in order.
  std::vector<std::string> write_csv(const std::string& dir,
                                     const std::string& prefix) const;
};

/// Serializes a double as a JSON token: round-trip precision via "%.17g",
/// with non-finite values mapped to null (JSON has no NaN/Inf).
std::string json_number(double value);

/// JSON string literal with the mandatory escapes.
std::string json_quote(std::string_view text);

}  // namespace sbx::eval
