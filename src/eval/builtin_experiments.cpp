// Built-in eval::Experiment adapters: one registry entry per experiment
// driver. Each adapter maps a validated Config onto the driver's config
// struct, runs it, and packs the driver's result structs into a ResultDoc
// whose table cells are formatted exactly as the legacy bench binaries
// printed them — the benches now render these documents instead of
// hand-rolling their own rows, and `sbx_experiments run/sweep` reuses the
// same documents unchanged.
//
// The good-word and ham-labeled experiments previously lived only inside
// bench_ext_* main()s; their measurement loops moved here so they are
// runnable (and testable) through the registry like everything else.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/attack.h"
#include "core/attack_math.h"
#include "core/attack_registry.h"
#include "core/dictionary_attack.h"
#include "core/focused_attack.h"
#include "core/roni.h"
#include "corpus/generator.h"
#include "eval/attack_axis.h"
#include "eval/experiment.h"
#include "eval/filter_axis.h"
#include "eval/experiments.h"
#include "eval/registry.h"
#include "eval/retraining.h"
#include "spambayes/filter.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/strings.h"

namespace sbx::eval {
namespace {

using util::Table;

template <typename... Args>
std::string strf(const char* format, Args... args) {
  char buf[320];
  // Audited: feeds human-readable report/note lines only, never the
  // round-trip JSON/CSV values (eval/result_doc.cpp, eval/attack_axis.cpp).
  // sbx-lint: allow(float-format): audited report-text helper, see above
  std::snprintf(buf, sizeof(buf), format, args...);
  return buf;
}

/// get_uint for count parameters where zero is meaningless and would
/// propagate NaN (0/0 rates) or empty sampling into the output: the
/// fail-loudly contract extends past type checks to these degenerate
/// values. Keys where 0 is a documented sentinel (dictionary_size,
/// attack_copies) use plain get_uint.
std::size_t positive_uint(const Config& config, std::string_view key) {
  const std::uint64_t value = config.get_uint(key);
  if (value == 0) {
    throw InvalidArgument("config key '" + std::string(key) +
                          "' must be greater than 0");
  }
  return static_cast<std::size_t>(value);
}

/// Help text for the generic attack-parameter pass-through every
/// attack-parametric experiment declares next to its `attack` key.
constexpr const char kAttackParamsHelp[] =
    "extra attack parameters as 'key=value;key=value', validated against "
    "the attack's own schema (sbx_experiments attacks describe <attack>)";

/// Resolves the experiment's `attack` key through the attack registry and
/// crafts the canonical poison. The craft rng is derived from the config
/// seed (attacks with random canonical parts — ham-labeled, backdoor —
/// stay deterministic per seed; the dictionary family never draws).
std::pair<BoundAttack, PoisonSpec> resolve_attack(
    const corpus::TrecLikeGenerator& gen, const Config& config) {
  BoundAttack bound = bind_attack(config.get_string("attack"), config);
  util::Rng craft_rng(config.get_uint("seed") ^ 0x63726166742d726eULL);
  PoisonSpec spec = resolve_poison(bound, gen, craft_rng);
  return {std::move(bound), std::move(spec)};
}

/// Shared base: name/description/paper_ref plus an owned schema.
class ExperimentBase : public Experiment {
 public:
  ExperimentBase(std::string name, std::string description,
                 std::string paper_ref)
      : name_(std::move(name)),
        description_(std::move(description)),
        paper_ref_(std::move(paper_ref)) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }
  std::string paper_ref() const override { return paper_ref_; }
  const ConfigSchema& schema() const override { return schema_; }

 protected:
  ResultDoc make_doc(const Config& config) const {
    ResultDoc doc;
    doc.experiment = name_;
    doc.config = config.items();
    return doc;
  }

  ConfigSchema schema_;

 private:
  std::string name_;
  std::string description_;
  std::string paper_ref_;
};

// ---------------------------------------------------------------------------
// dictionary — Figure 1 (one attack variant per config).
// ---------------------------------------------------------------------------

class DictionaryExperiment : public ExperimentBase {
 public:
  DictionaryExperiment()
      : ExperimentBase(
            "dictionary",
            "dictionary-attack poisoning curve vs. percent control",
            "Figure 1 + Section 4.2 of Nelson et al. 2008") {
    schema_
        .add("training_set_size", ParamType::kUInt, "10000",
             "clean training-set size (Table 1: 2,000 or 10,000)")
        .add("spam_fraction", ParamType::kDouble, "0.5",
             "spam share of the training set")
        .add("attack", ParamType::kString, "usenet",
             "registry attack crafting the poison (sbx_experiments attacks "
             "list): optimal | usenet | aspell | informed | ham-labeled | "
             "backdoor-trigger")
        .add("attack_params", ParamType::kString, "",
             kAttackParamsHelp)
        .add("dictionary_size", ParamType::kUInt, "0",
             "truncate the dictionary to this many words (0 = full)")
        .add("attack_fractions", ParamType::kDoubleList,
             "0.001,0.005,0.01,0.02,0.05,0.1",
             "attack strength as fraction of the final training set")
        .add("folds", ParamType::kUInt, "10", "cross-validation folds")
        .add("seed", ParamType::kUInt, "20080401", "master RNG seed");
    add_tokenizer_axis(schema_);
  }

  std::vector<std::pair<std::string, std::string>> quick_overrides()
      const override {
    return {{"training_set_size", "2000"}};
  }

  ResultDoc run(const Config& config, const RunContext& ctx) const override {
    const corpus::TrecLikeGenerator generator;
    const auto [bound, spec] = resolve_attack(generator, config);

    DictionaryCurveConfig dc;
    dc.training_set_size =
        positive_uint(config, "training_set_size");
    dc.spam_fraction = config.get_double("spam_fraction");
    dc.attack_fractions = config.get_double_list("attack_fractions");
    dc.folds = positive_uint(config, "folds");
    dc.seed = config.get_uint("seed");
    dc.filter = resolve_filter_options(config);
    dc.threads = ctx.threads;

    ctx.note(strf("running %s attack vs. %zu-message training set, "
                  "%zu-fold CV...",
                  spec.name.c_str(), dc.training_set_size, dc.folds));
    const DictionaryCurve curve =
        run_dictionary_curve(generator, spec, dc);

    ResultDoc doc = make_doc(config);
    tag_attack(doc, *bound.attack);
    Table& table = doc.add_table(
        "curve", {"training set", "attack", "dict words", "control %",
                  "attack msgs", "ham->spam %", "ham->spam|unsure %",
                  "fold stddev", "spam->misc %", "token ratio"});
    Series misclassified{curve.attack_name + " (ham as spam or unsure, %)",
                         {}, {}};
    for (const auto& p : curve.points) {
      table.add_row(
          {std::to_string(dc.training_set_size), curve.attack_name,
           std::to_string(curve.dictionary_size),
           Table::cell(100.0 * p.attack_fraction, 1),
           std::to_string(p.attack_messages),
           Table::cell(100.0 * p.matrix.ham_as_spam_rate(), 1),
           Table::cell(100.0 * p.matrix.ham_misclassified_rate(), 1),
           Table::cell(100.0 * p.ham_misclassified_by_fold.stddev(), 1),
           Table::cell(100.0 * p.matrix.spam_misclassified_rate(), 1),
           Table::cell(p.attack_token_ratio, 2)});
      misclassified.x.push_back(100.0 * p.attack_fraction);
      misclassified.y.push_back(100.0 * p.matrix.ham_misclassified_rate());
    }
    doc.series.push_back(std::move(misclassified));

    doc.add_metric("dictionary_size",
                   static_cast<double>(curve.dictionary_size));
    doc.add_metric(
        "control_ham_misclassified_pct",
        100.0 * curve.points.front().matrix.ham_misclassified_rate());
    doc.add_metric(
        "final_ham_misclassified_pct",
        100.0 * curve.points.back().matrix.ham_misclassified_rate());
    doc.add_metric("final_attack_token_ratio",
                   curve.points.back().attack_token_ratio);
    doc.add_metric("attack_email_bytes",
                   static_cast<double>(spec.message.body().size()));

    // BadNets measurement: the attacker's trigger-stamped spam scored
    // against each poison level ("leak" = not filed as spam). Only
    // trigger-carrying attacks add this table, so every pre-existing
    // config serializes unchanged.
    if (curve.has_trigger) {
      Table& leak = doc.add_table(
          "trigger", {"control %", "attack msgs", "trigger spam->ham %",
                      "trigger spam->unsure %", "trigger leak %"});
      Series leaked{"trigger-stamped spam leaked (%)", {}, {}};
      for (const auto& p : curve.points) {
        leak.add_row(
            {Table::cell(100.0 * p.attack_fraction, 1),
             std::to_string(p.attack_messages),
             Table::cell(100.0 * p.triggered.spam_as_ham_rate(), 1),
             Table::cell(100.0 * p.triggered.spam_as_unsure_rate(), 1),
             Table::cell(100.0 * p.triggered.spam_misclassified_rate(), 1)});
        leaked.x.push_back(100.0 * p.attack_fraction);
        leaked.y.push_back(100.0 * p.triggered.spam_misclassified_rate());
      }
      doc.series.push_back(std::move(leaked));
      doc.add_metric(
          "control_trigger_leak_pct",
          100.0 * curve.points.front().triggered.spam_misclassified_rate());
      doc.add_metric(
          "final_trigger_leak_pct",
          100.0 * curve.points.back().triggered.spam_misclassified_rate());
    }
    return doc;
  }
};

// ---------------------------------------------------------------------------
// focused-knowledge — Figure 2.
// ---------------------------------------------------------------------------

class FocusedKnowledgeExperiment : public ExperimentBase {
 public:
  FocusedKnowledgeExperiment()
      : ExperimentBase("focused-knowledge",
                       "focused attack vs. attacker token knowledge p",
                       "Figure 2 of Nelson et al. 2008") {
    schema_
        .add("inbox_size", ParamType::kUInt, "5000",
             "victim inbox size (Table 1: 5,000)")
        .add("spam_fraction", ParamType::kDouble, "0.5",
             "spam share of the inbox")
        .add("target_count", ParamType::kUInt, "20",
             "target ham emails per repetition")
        .add("repetitions", ParamType::kUInt, "5",
             "independent experiment repetitions")
        .add("attack", ParamType::kString, "focused",
             "registry attack crafting the per-target poison "
             "(sbx_experiments attacks list)")
        .add("attack_params", ParamType::kString, "",
             kAttackParamsHelp)
        .add("attack_count", ParamType::kUInt, "300",
             "attack emails per target")
        .add("guess_probabilities", ParamType::kDoubleList, "0.1,0.3,0.5,0.9",
             "attacker token-guess probabilities p")
        .add("seed", ParamType::kUInt, "20080402", "master RNG seed");
  }

  std::vector<std::pair<std::string, std::string>> quick_overrides()
      const override {
    return {{"inbox_size", "1000"},
            {"target_count", "10"},
            {"repetitions", "2"},
            {"attack_count", "60"}};
  }

  ResultDoc run(const Config& config, const RunContext& ctx) const override {
    const corpus::TrecLikeGenerator generator;
    FocusedConfig fc;
    fc.inbox_size = positive_uint(config, "inbox_size");
    fc.spam_fraction = config.get_double("spam_fraction");
    fc.target_count =
        positive_uint(config, "target_count");
    fc.repetitions = positive_uint(config, "repetitions");
    fc.seed = config.get_uint("seed");
    fc.threads = ctx.threads;

    const BoundAttack bound = bind_attack(config.get_string("attack"), config);
    ctx.note(strf("running %s attack on %zu-message inbox, "
                  "%zu targets x %zu repetitions...",
                  bound.attack->name().c_str(), fc.inbox_size, fc.target_count,
                  fc.repetitions));
    const auto points = run_focused_knowledge(
        generator, *bound.attack, bound.params,
        config.get_double_list("guess_probabilities"),
        positive_uint(config, "attack_count"), fc);

    ResultDoc doc = make_doc(config);
    tag_attack(doc, *bound.attack);
    Table& table = doc.add_table(
        "knowledge", {"guess prob p", "targets", "ham %", "unsure %",
                      "spam %", "attack success %", "control ham %"});
    Series success{"attack success (%)", {}, {}};
    for (const auto& p : points) {
      const double n = static_cast<double>(p.targets);
      table.add_row({Table::cell(p.guess_probability, 1),
                     std::to_string(p.targets),
                     Table::cell(100.0 * p.as_ham / n, 1),
                     Table::cell(100.0 * p.as_unsure / n, 1),
                     Table::cell(100.0 * p.as_spam / n, 1),
                     Table::cell(100.0 * (p.as_unsure + p.as_spam) / n, 1),
                     Table::cell(100.0 * p.control_as_ham / n, 1)});
      success.x.push_back(p.guess_probability);
      success.y.push_back(100.0 * (p.as_unsure + p.as_spam) / n);
    }
    doc.series.push_back(std::move(success));
    if (!points.empty()) {
      const auto& last = points.back();
      const double n = static_cast<double>(last.targets);
      doc.add_metric("max_p_attack_success_pct",
                     100.0 * (last.as_unsure + last.as_spam) / n);
      doc.add_metric("control_as_ham_pct", 100.0 * last.control_as_ham / n);
    }
    return doc;
  }
};

// ---------------------------------------------------------------------------
// focused-size — Figure 3.
// ---------------------------------------------------------------------------

class FocusedSizeExperiment : public ExperimentBase {
 public:
  FocusedSizeExperiment()
      : ExperimentBase("focused-size",
                       "focused attack vs. number of attack emails",
                       "Figure 3 of Nelson et al. 2008") {
    schema_
        .add("inbox_size", ParamType::kUInt, "5000", "victim inbox size")
        .add("spam_fraction", ParamType::kDouble, "0.5",
             "spam share of the inbox")
        .add("target_count", ParamType::kUInt, "20",
             "target ham emails per repetition")
        .add("repetitions", ParamType::kUInt, "5",
             "independent experiment repetitions")
        .add("attack", ParamType::kString, "focused",
             "registry attack crafting the per-target poison "
             "(sbx_experiments attacks list)")
        .add("attack_params", ParamType::kString, "",
             kAttackParamsHelp)
        .add("guess_probability", ParamType::kDouble, "0.5",
             "attacker token-guess probability p")
        .add("attack_fractions", ParamType::kDoubleList,
             "0.005,0.01,0.02,0.04,0.06,0.08,0.1",
             "attack size as fraction of the inbox")
        .add("seed", ParamType::kUInt, "20080402", "master RNG seed");
  }

  std::vector<std::pair<std::string, std::string>> quick_overrides()
      const override {
    return {{"inbox_size", "1000"},
            {"target_count", "10"},
            {"repetitions", "2"},
            {"attack_fractions", "0.01,0.02,0.05,0.1"}};
  }

  ResultDoc run(const Config& config, const RunContext& ctx) const override {
    const corpus::TrecLikeGenerator generator;
    FocusedConfig fc;
    fc.inbox_size = positive_uint(config, "inbox_size");
    fc.spam_fraction = config.get_double("spam_fraction");
    fc.target_count =
        positive_uint(config, "target_count");
    fc.repetitions = positive_uint(config, "repetitions");
    fc.seed = config.get_uint("seed");
    fc.threads = ctx.threads;

    const BoundAttack bound = bind_attack(config.get_string("attack"), config);
    ctx.note(strf("running %s attack on %zu-message inbox, "
                  "%zu targets x %zu repetitions...",
                  bound.attack->name().c_str(), fc.inbox_size, fc.target_count,
                  fc.repetitions));
    const auto points = run_focused_size(
        generator, *bound.attack, bound.params,
        config.get_double("guess_probability"),
        config.get_double_list("attack_fractions"), fc);

    ResultDoc doc = make_doc(config);
    tag_attack(doc, *bound.attack);
    Table& table = doc.add_table(
        "size", {"control %", "attack msgs", "targets", "target->spam %",
                 "target->spam|unsure %"});
    Series solid{"target as unsure or spam (%)", {}, {}};
    Series dashed{"target as spam (%)", {}, {}};
    for (const auto& p : points) {
      const double n = static_cast<double>(p.targets);
      table.add_row({Table::cell(100.0 * p.attack_fraction, 1),
                     std::to_string(p.attack_messages),
                     std::to_string(p.targets),
                     Table::cell(100.0 * p.as_spam / n, 1),
                     Table::cell(100.0 * p.as_unsure_or_spam / n, 1)});
      solid.x.push_back(100.0 * p.attack_fraction);
      solid.y.push_back(100.0 * p.as_unsure_or_spam / n);
      dashed.x.push_back(100.0 * p.attack_fraction);
      dashed.y.push_back(100.0 * p.as_spam / n);
    }
    doc.series.push_back(std::move(solid));
    doc.series.push_back(std::move(dashed));
    if (!points.empty()) {
      const auto& last = points.back();
      const double n = static_cast<double>(last.targets);
      doc.add_metric("final_target_as_spam_pct", 100.0 * last.as_spam / n);
      doc.add_metric("final_target_misclassified_pct",
                     100.0 * last.as_unsure_or_spam / n);
    }
    return doc;
  }
};

// ---------------------------------------------------------------------------
// token-shift — Figure 4.
// ---------------------------------------------------------------------------

class TokenShiftExperiment : public ExperimentBase {
 public:
  TokenShiftExperiment()
      : ExperimentBase("token-shift",
                       "per-token score shift on representative targets",
                       "Figure 4 of Nelson et al. 2008") {
    schema_
        .add("inbox_size", ParamType::kUInt, "5000", "victim inbox size")
        .add("spam_fraction", ParamType::kDouble, "0.5",
             "spam share of the inbox")
        .add("guess_probability", ParamType::kDouble, "0.5",
             "attacker token-guess probability p")
        .add("attack_count", ParamType::kUInt, "300",
             "attack emails per target")
        .add("max_targets", ParamType::kUInt, "60",
             "targets scanned for the three outcome classes")
        .add("seed", ParamType::kUInt, "20080402", "master RNG seed");
  }

  std::vector<std::pair<std::string, std::string>> quick_overrides()
      const override {
    return {{"inbox_size", "1000"}, {"attack_count", "60"}};
  }

  ResultDoc run(const Config& config, const RunContext&) const override {
    const corpus::TrecLikeGenerator generator;
    FocusedConfig fc;
    fc.inbox_size = positive_uint(config, "inbox_size");
    fc.spam_fraction = config.get_double("spam_fraction");
    fc.seed = config.get_uint("seed");

    const auto examples = run_token_shift(
        generator, config.get_double("guess_probability"),
        positive_uint(config, "attack_count"), fc,
        positive_uint(config, "max_targets"));

    ResultDoc doc = make_doc(config);
    // The driver is intrinsically the focused attack's token-level
    // diagnostic; tag it as such.
    tag_attack(doc, core::builtin_attack_registry().get("focused"));
    Table& table = doc.add_table(
        "tokens",
        {"example", "token", "score_before", "score_after", "in_attack"});
    for (const auto& ex : examples) {
      std::size_t guessed = 0;
      std::size_t guessed_up = 0;
      std::size_t missed_down = 0;
      std::size_t missed = 0;
      for (const auto& t : ex.tokens) {
        if (t.in_attack) {
          ++guessed;
          guessed_up += t.score_after > t.score_before ? 1 : 0;
        } else {
          ++missed;
          missed_down += t.score_after < t.score_before ? 1 : 0;
        }
        table.add_row({std::string(spambayes::to_string(ex.verdict_after)),
                       t.token, Table::cell(t.score_before, 4),
                       Table::cell(t.score_after, 4),
                       t.in_attack ? "1" : "0"});
      }
      doc.report.push_back(strf(
          "target -> %s after attack   (message score %.3f -> %.3f)",
          std::string(spambayes::to_string(ex.verdict_after)).c_str(),
          ex.message_score_before, ex.message_score_after));
      doc.report.push_back(strf(
          "  %zu/%zu guessed tokens increased; %zu/%zu missed tokens "
          "decreased",
          guessed_up, guessed, missed_down, missed));
      append_histogram(doc.report, ex);
      doc.report.push_back("");
    }
    doc.add_metric("examples_found", static_cast<double>(examples.size()));
    return doc;
  }

 private:
  /// 10-bucket before/after token-score histograms, as in the figure's
  /// marginal histograms.
  static void append_histogram(std::vector<std::string>& report,
                               const TokenShiftExample& ex) {
    int before[10] = {0};
    int after[10] = {0};
    for (const auto& t : ex.tokens) {
      auto bucket = [](double s) {
        int b = static_cast<int>(s * 10.0);
        return b < 0 ? 0 : (b > 9 ? 9 : b);
      };
      before[bucket(t.score_before)] += 1;
      after[bucket(t.score_after)] += 1;
    }
    std::string line = "  score bucket:   ";
    for (int b = 0; b < 10; ++b) line += strf("%5.1f", b / 10.0);
    report.push_back(line);
    line = "  tokens before:  ";
    for (int b = 0; b < 10; ++b) line += strf("%5d", before[b]);
    report.push_back(line);
    line = "  tokens after :  ";
    for (int b = 0; b < 10; ++b) line += strf("%5d", after[b]);
    report.push_back(line);
  }
};

// ---------------------------------------------------------------------------
// roni — Section 5.1.
// ---------------------------------------------------------------------------

class RoniExperiment : public ExperimentBase {
 public:
  RoniExperiment()
      : ExperimentBase("roni",
                       "RONI defense vs. seven dictionary-attack variants",
                       "Section 5.1 of Nelson et al. 2008") {
    schema_
        .add("pool_size", ParamType::kUInt, "1000",
             "clean pool RONI samples (T, V) from")
        .add("spam_fraction", ParamType::kDouble, "0.5",
             "spam share of the clean pool")
        .add("attack", ParamType::kString, "dictionary-suite",
             "what RONI assesses: 'dictionary-suite' = the paper's seven "
             "dictionary variants; otherwise a comma-separated list of "
             "registry attack names (e.g. 'usenet,aspell'), each assessed "
             "as its own variant")
        .add("attack_params", ParamType::kString, "",
             kAttackParamsHelp)
        .add("dictionary_size", ParamType::kUInt, "0",
             "payload truncation forwarded to a single registry attack "
             "(ignored by the suite; 0 = the attack's full default)")
        .add("nonattack_queries", ParamType::kUInt, "120",
             "non-attack spam queries (the false-positive class)")
        .add("attack_repetitions", ParamType::kUInt, "15",
             "assessments per attack variant")
        .add("train_size", ParamType::kUInt, "20", "RONI |T|")
        .add("validation_size", ParamType::kUInt, "50", "RONI |V|")
        .add("resamples", ParamType::kUInt, "5",
             "independent (T, V) draws per assessment")
        .add("rejection_threshold", ParamType::kDouble, "5.5",
             "mean ham-as-ham decrease that rejects a query")
        .add("seed", ParamType::kUInt, "20080403", "master RNG seed");
  }

  std::vector<std::pair<std::string, std::string>> quick_overrides()
      const override {
    return {{"nonattack_queries", "30"},
            {"attack_repetitions", "5"},
            {"pool_size", "400"}};
  }

  ResultDoc run(const Config& config, const RunContext& ctx) const override {
    const corpus::TrecLikeGenerator generator;
    const std::string attack_name = config.get_string("attack");

    // The queries RONI assesses, plus how the document is attack-tagged.
    std::vector<RoniQuery> queries;
    std::string tag_name;
    std::string tag_taxonomy;
    if (attack_name == "dictionary-suite") {
      // Seven dictionary-attack variants, as in §5.1.
      const auto& lexicons = generator.lexicons();
      const std::vector<core::DictionaryAttack> attacks = {
          core::DictionaryAttack::optimal(generator),
          core::DictionaryAttack::aspell(lexicons),
          core::DictionaryAttack::aspell_truncated(lexicons, 50'000),
          core::DictionaryAttack::aspell_truncated(lexicons, 25'000),
          core::DictionaryAttack::usenet(lexicons, 90'000),
          core::DictionaryAttack::usenet(lexicons, 50'000),
          core::DictionaryAttack::usenet(lexicons, 25'000),
      };
      for (const auto& a : attacks) {
        queries.push_back(RoniQuery{a.name(), a.attack_message()});
      }
      tag_name = "dictionary-suite";
      tag_taxonomy = core::DictionaryAttack::properties().description();
    } else {
      // One or more registry attacks ("usenet,aspell"), each a variant.
      // Every attack gets the same fresh craft rng the single-attack path
      // always used, so 'attack=usenet' is bit-identical to before and
      // each list element is independent of its neighbors.
      std::vector<std::string> names;
      for (const std::string& part : util::split(attack_name, ',')) {
        const std::string name(util::trim(part));
        if (name.empty()) continue;
        names.push_back(name);
        BoundAttack bound = bind_attack(name, config);
        util::Rng craft_rng(config.get_uint("seed") ^ 0x63726166742d726eULL);
        PoisonSpec spec = resolve_poison(bound, generator, craft_rng);
        queries.push_back(RoniQuery{spec.name, std::move(spec.message)});
        if (tag_taxonomy.empty()) {
          tag_taxonomy = bound.attack->properties().description();
        }
      }
      if (queries.empty()) {
        throw InvalidArgument("roni: attack list '" + attack_name +
                              "' names no attacks");
      }
      tag_name = util::join(names, "+");
    }

    RoniExperimentConfig rc;
    rc.pool_size = positive_uint(config, "pool_size");
    rc.spam_fraction = config.get_double("spam_fraction");
    rc.nonattack_queries = positive_uint(config, "nonattack_queries");
    rc.attack_repetitions = positive_uint(config, "attack_repetitions");
    rc.roni.train_size =
        positive_uint(config, "train_size");
    rc.roni.validation_size =
        positive_uint(config, "validation_size");
    rc.roni.resamples = positive_uint(config, "resamples");
    rc.roni.rejection_threshold = config.get_double("rejection_threshold");
    rc.seed = config.get_uint("seed");
    rc.threads = ctx.threads;

    ctx.note(strf("assessing %zu non-attack queries + %zu reps x %zu "
                  "attack variants through RONI...",
                  rc.nonattack_queries, rc.attack_repetitions,
                  queries.size()));
    const RoniExperimentResult result =
        run_roni_experiment(generator, queries, rc);

    ResultDoc doc = make_doc(config);
    doc.attack_name = tag_name;
    doc.attack_taxonomy = tag_taxonomy;
    Table& table = doc.add_table(
        "assessments", {"query class", "assessed", "mean impact",
                        "min impact", "max impact", "rejected %"});
    auto add = [&table](const RoniVariantResult& v) {
      table.add_row({v.name, std::to_string(v.assessed),
                     Table::cell(v.impact.mean(), 2),
                     Table::cell(v.impact.min(), 2),
                     Table::cell(v.impact.max(), 2),
                     Table::cell(100.0 * v.rejection_rate(), 1)});
    };
    add(result.nonattack_spam);
    for (const auto& v : result.attack_variants) add(v);

    double attack_min = 1e9;
    for (const auto& v : result.attack_variants) {
      attack_min = std::min(attack_min, v.impact.min());
    }
    doc.add_metric("nonattack_max_impact", result.nonattack_spam.impact.max());
    doc.add_metric("attack_min_impact", attack_min);
    doc.add_metric("nonattack_rejected_pct",
                   100.0 * result.nonattack_spam.rejection_rate());
    std::size_t attack_assessed = 0, attack_rejected = 0;
    for (const auto& v : result.attack_variants) {
      attack_assessed += v.assessed;
      attack_rejected += v.rejected;
    }
    doc.add_metric("attack_rejected_pct",
                   attack_assessed == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(attack_rejected) /
                             static_cast<double>(attack_assessed));
    doc.report.push_back("");
    doc.report.push_back(strf(
        "separation: non-attack spam impact max = %.2f; dictionary attack",
        result.nonattack_spam.impact.max()));
    doc.report.push_back(strf(
        "impact min = %.2f (paper: 4.4 vs 6.8). Detection should be 100%%",
        attack_min));
    doc.report.push_back("of attack emails with 0% false positives.");
    return doc;
  }
};

// ---------------------------------------------------------------------------
// threshold — Figure 5.
// ---------------------------------------------------------------------------

class ThresholdExperiment : public ExperimentBase {
 public:
  ThresholdExperiment()
      : ExperimentBase("threshold",
                       "dynamic threshold defense vs. the dictionary attack",
                       "Figure 5 + Section 5.2 of Nelson et al. 2008") {
    schema_
        .add("training_set_size", ParamType::kUInt, "10000",
             "clean training-set size")
        .add("spam_fraction", ParamType::kDouble, "0.5",
             "spam share of the training set")
        .add("attack", ParamType::kString, "usenet",
             "registry attack crafting the poison (sbx_experiments attacks "
             "list): optimal | usenet | aspell | informed | ham-labeled | "
             "backdoor-trigger")
        .add("attack_params", ParamType::kString, "",
             kAttackParamsHelp)
        .add("dictionary_size", ParamType::kUInt, "0",
             "truncate the dictionary to this many words (0 = full)")
        .add("attack_fractions", ParamType::kDoubleList,
             "0.001,0.01,0.05,0.1",
             "attack strength as fraction of the final training set")
        .add("folds", ParamType::kUInt, "10", "cross-validation folds")
        .add("utility_targets", ParamType::kDoubleList, "0.05,0.1",
             "defense variants: each t selects thresholds (t, 1-t)")
        .add("seed", ParamType::kUInt, "20080401", "master RNG seed");
  }

  std::vector<std::pair<std::string, std::string>> quick_overrides()
      const override {
    return {{"training_set_size", "2000"}, {"folds", "5"}};
  }

  /// The paper's variant label: t = 0.05 -> "Threshold-.05".
  static std::string variant_name(double target) {
    std::string formatted = util::format_double(target, 2);
    if (formatted.size() > 1 && formatted[0] == '0') formatted.erase(0, 1);
    return "Threshold-" + formatted;
  }

  ResultDoc run(const Config& config, const RunContext& ctx) const override {
    const corpus::TrecLikeGenerator generator;
    const auto [bound, spec] = resolve_attack(generator, config);

    ThresholdDefenseConfig tc;
    tc.base.training_set_size =
        positive_uint(config, "training_set_size");
    tc.base.spam_fraction = config.get_double("spam_fraction");
    tc.base.attack_fractions = config.get_double_list("attack_fractions");
    tc.base.folds = positive_uint(config, "folds");
    tc.base.seed = config.get_uint("seed");
    tc.base.threads = ctx.threads;
    const std::vector<double> targets =
        config.get_double_list("utility_targets");
    tc.variants.clear();
    for (double t : targets) tc.variants.push_back({t, 1.0 - t});

    ctx.note(strf("running threshold defense vs. %s attack, "
                  "%zu-message training set, %zu-fold CV...",
                  spec.name.c_str(), tc.base.training_set_size,
                  tc.base.folds));
    const auto points = run_threshold_defense_curve(generator, spec, tc);

    ResultDoc doc = make_doc(config);
    tag_attack(doc, *bound.attack);
    Table& table = doc.add_table(
        "defense", {"control %", "attack msgs", "variant", "theta0",
                    "theta1", "ham->spam %", "ham->spam|unsure %",
                    "spam->unsure %", "spam->ham %"});
    std::vector<Series> series;
    series.push_back({"no defense (ham misclassified, %)", {}, {}});
    for (double t : targets) {
      series.push_back({variant_name(t) + " (ham misclassified, %)", {}, {}});
    }
    for (const auto& p : points) {
      auto add = [&](const std::string& variant, const ConfusionMatrix& m,
                     double t0, double t1) {
        table.add_row({Table::cell(100.0 * p.attack_fraction, 1),
                       std::to_string(p.attack_messages), variant,
                       Table::cell(t0, 3), Table::cell(t1, 3),
                       Table::cell(100.0 * m.ham_as_spam_rate(), 1),
                       Table::cell(100.0 * m.ham_misclassified_rate(), 1),
                       Table::cell(100.0 * m.spam_as_unsure_rate(), 1),
                       Table::cell(100.0 * m.spam_as_ham_rate(), 1)});
      };
      add("No Defense", p.no_defense, 0.15, 0.90);
      series[0].x.push_back(100.0 * p.attack_fraction);
      series[0].y.push_back(100.0 * p.no_defense.ham_misclassified_rate());
      for (std::size_t vi = 0; vi < p.defended.size(); ++vi) {
        add(variant_name(targets[vi % targets.size()]), p.defended[vi],
            p.mean_thresholds[vi].theta0, p.mean_thresholds[vi].theta1);
        if (vi + 1 < series.size()) {
          series[vi + 1].x.push_back(100.0 * p.attack_fraction);
          series[vi + 1].y.push_back(
              100.0 * p.defended[vi].ham_misclassified_rate());
        }
      }
    }
    doc.series = std::move(series);
    if (!points.empty()) {
      const auto& last = points.back();
      doc.add_metric("final_no_defense_ham_misclassified_pct",
                     100.0 * last.no_defense.ham_misclassified_rate());
      if (!last.defended.empty()) {
        doc.add_metric("final_defended_ham_misclassified_pct",
                       100.0 * last.defended[0].ham_misclassified_rate());
        doc.add_metric("final_defended_spam_as_unsure_pct",
                       100.0 * last.defended[0].spam_as_unsure_rate());
      }
    }
    return doc;
  }
};

// ---------------------------------------------------------------------------
// retraining — §2.1 deployment extension (one scenario per config).
// ---------------------------------------------------------------------------

class RetrainingExperiment : public ExperimentBase {
 public:
  RetrainingExperiment()
      : ExperimentBase(
            "retraining",
            "poison persistence across weekly retraining cycles",
            "Section 2.1 deployment scenario (extension)") {
    schema_
        .add("weeks", ParamType::kUInt, "8", "timeline length")
        .add("messages_per_week", ParamType::kUInt, "1000",
             "inbound mail per week")
        .add("spam_fraction", ParamType::kDouble, "0.5",
             "spam share of weekly mail")
        .add("test_messages", ParamType::kUInt, "400",
             "fresh mail scored after each retrain")
        .add("cumulative", ParamType::kBool, "true",
             "retrain on all mail ever received (false = sliding window)")
        .add("window_weeks", ParamType::kUInt, "3",
             "sliding-window width when cumulative=false")
        .add("roni_gate", ParamType::kBool, "false",
             "screen spam-labeled training mail through RONI")
        .add("dynamic_thresholds", ParamType::kBool, "false",
             "re-derive classification thresholds each cycle")
        .add("roni_resamples", ParamType::kUInt, "2",
             "RONI (T, V) resamples per candidate (2 suffices for the "
             "dictionary-vs-mail margin)")
        .add("attack", ParamType::kString, "usenet",
             "registry attack injected (sbx_experiments attacks list): "
             "optimal | usenet | aspell | informed | ham-labeled | "
             "backdoor-trigger")
        .add("attack_params", ParamType::kString, "",
             kAttackParamsHelp)
        .add("attack_week", ParamType::kUInt, "2",
             "week the poison lands in")
        .add("attack_copies", ParamType::kUInt, "0",
             "attack copies, trained under the attack's poison label "
             "(0 = messages_per_week / 50)")
        .add("seed", ParamType::kUInt, "20080405", "master RNG seed");
  }

  std::vector<std::pair<std::string, std::string>> quick_overrides()
      const override {
    return {{"messages_per_week", "300"}, {"test_messages", "200"}};
  }

  ResultDoc run(const Config& config, const RunContext& ctx) const override {
    const corpus::TrecLikeGenerator generator;
    const auto [bound, spec] = resolve_attack(generator, config);
    const spambayes::Tokenizer tokenizer;
    const spambayes::TokenSet attack_tokens =
        spambayes::unique_tokens(tokenizer.tokenize(spec.message));

    RetrainingConfig rc;
    rc.weeks = positive_uint(config, "weeks");
    rc.messages_per_week =
        positive_uint(config, "messages_per_week");
    rc.spam_fraction = config.get_double("spam_fraction");
    rc.test_messages =
        positive_uint(config, "test_messages");
    rc.cumulative = config.get_bool("cumulative");
    rc.window_weeks =
        positive_uint(config, "window_weeks");
    rc.roni_gate = config.get_bool("roni_gate");
    rc.dynamic_thresholds = config.get_bool("dynamic_thresholds");
    rc.roni.resamples =
        positive_uint(config, "roni_resamples");
    rc.seed = config.get_uint("seed");

    std::uint32_t copies =
        static_cast<std::uint32_t>(config.get_uint("attack_copies"));
    if (copies == 0) {
      copies = static_cast<std::uint32_t>(rc.messages_per_week / 50);
    }
    AttackInjection injection(
        static_cast<std::size_t>(config.get_uint("attack_week")),
        attack_tokens, copies);
    injection.label = spec.train_as;
    injection.trigger_ids = trigger_token_ids(spec, tokenizer);
    const std::vector<AttackInjection> injections = {injection};

    ctx.note(strf("running %zu-week timeline, %zu msgs/week...",
                  rc.weeks, rc.messages_per_week));
    const auto reports =
        run_retraining_timeline(generator, injections, rc);

    ResultDoc doc = make_doc(config);
    tag_attack(doc, *bound.attack);
    Table& table = doc.add_table(
        "timeline",
        {"week", "ham misc %", "spam misc %", "attack admitted", "theta1"});
    std::size_t admitted_total = 0;
    Series ham_misc{"ham misclassified (%)", {}, {}};
    for (const auto& r : reports) {
      table.add_row(
          {Table::cell(r.week),
           Table::cell(100.0 * r.test.ham_misclassified_rate(), 1),
           Table::cell(100.0 * r.test.spam_misclassified_rate(), 1),
           Table::cell(r.attack_admitted),
           Table::cell(r.thresholds.theta1, 3)});
      admitted_total += r.attack_admitted;
      ham_misc.x.push_back(static_cast<double>(r.week));
      ham_misc.y.push_back(100.0 * r.test.ham_misclassified_rate());
    }
    doc.series.push_back(std::move(ham_misc));
    doc.add_metric("attack_copies_offered", static_cast<double>(copies));
    doc.add_metric("attack_copies_admitted",
                   static_cast<double>(admitted_total));
    if (!reports.empty()) {
      doc.add_metric(
          "final_week_ham_misclassified_pct",
          100.0 * reports.back().test.ham_misclassified_rate());
    }

    // BadNets measurement: the weekly leak rate of trigger-stamped spam.
    // Only trigger-carrying attacks add this table, so every pre-existing
    // config serializes unchanged.
    if (!spec.trigger.empty()) {
      Table& leak = doc.add_table(
          "trigger", {"week", "trigger probes", "trigger leak %"});
      Series leaked{"trigger-stamped spam leaked (%)", {}, {}};
      for (const auto& r : reports) {
        const double probes =
            r.trigger_probes > 0 ? static_cast<double>(r.trigger_probes) : 1.0;
        leak.add_row({Table::cell(r.week), Table::cell(r.trigger_probes),
                      Table::cell(100.0 * r.trigger_leaked / probes, 1)});
        leaked.x.push_back(static_cast<double>(r.week));
        leaked.y.push_back(100.0 * r.trigger_leaked / probes);
      }
      doc.series.push_back(std::move(leaked));
      if (!reports.empty()) {
        const auto& last = reports.back();
        const double probes =
            last.trigger_probes > 0 ? static_cast<double>(last.trigger_probes)
                                    : 1.0;
        doc.add_metric("final_trigger_leak_pct",
                       100.0 * last.trigger_leaked / probes);
      }
    }
    return doc;
  }
};

// ---------------------------------------------------------------------------
// good-word — Exploratory evasion vs. Causative poisoning (extension).
// ---------------------------------------------------------------------------

class GoodWordExperiment : public ExperimentBase {
 public:
  GoodWordExperiment()
      : ExperimentBase(
            "good-word",
            "good-word evasion (Exploratory) vs. poisoning (Causative)",
            "Sections 3.1 + 6 (Lowd-Meek / Wittel-Wu contrast)") {
    schema_
        .add("inbox_size", ParamType::kUInt, "10000",
             "victim training-inbox size")
        .add("spam_fraction", ParamType::kDouble, "0.5",
             "spam share of the inbox")
        .add("attack", ParamType::kString, "good-word",
             "registry Exploratory attack evading the fixed filter "
             "(good-word | obfuscation)")
        .add("attack_params", ParamType::kString, "",
             kAttackParamsHelp)
        .add("common_words", ParamType::kUInt, "2000",
             "how many top ham-core words the evader pads with")
        .add("batch_size", ParamType::kUInt, "10",
             "words appended between filter queries")
        .add("max_words", ParamType::kUInt, "2000",
             "evasion word budget per message")
        .add("probes", ParamType::kUInt, "200",
             "spam messages tried per evasion goal")
        .add("poison_fraction", ParamType::kDouble, "0.01",
             "causative comparison: dictionary poisoning strength")
        .add("poison_probes", ParamType::kUInt, "300",
             "ham messages probed after poisoning")
        .add("seed", ParamType::kUInt, "20080407", "master RNG seed");
  }

  std::vector<std::pair<std::string, std::string>> quick_overrides()
      const override {
    return {{"inbox_size", "2000"}, {"probes", "60"}, {"poison_probes", "100"}};
  }

  ResultDoc run(const Config& config, const RunContext& ctx) const override {
    const corpus::TrecLikeGenerator generator;
    const std::size_t inbox_size =
        positive_uint(config, "inbox_size");
    util::Rng rng(config.get_uint("seed"));

    corpus::Dataset inbox =
        generator.sample_mailbox(inbox_size, config.get_double("spam_fraction"),
                                 rng);
    spambayes::Filter filter;
    for (const auto& item : inbox.items) {
      if (item.label == corpus::TrueLabel::spam) {
        filter.train_spam(item.message);
      } else {
        filter.train_ham(item.message);
      }
    }

    // The attacker's evasion strategy comes from the registry: good-word
    // pads with the most common words of the victim's language — Wittel &
    // Wu's "common words" strategy (the attacker plausibly knows
    // high-frequency English, not the victim's mailbox) — while
    // obfuscation mangles the spammiest words character-by-character.
    const BoundAttack bound = bind_attack(config.get_string("attack"), config);

    ctx.note(strf("evading %zu-message victim filter, %zu probes per "
                  "goal...",
                  inbox_size, static_cast<std::size_t>(
                                  positive_uint(config, "probes"))));
    ResultDoc doc = make_doc(config);
    tag_attack(doc, *bound.attack);
    Table& table = doc.add_table(
        "evasion", {"goal", "spam tried", "evaded %", "median words added",
                    "median queries"});
    const int n = static_cast<int>(positive_uint(config, "probes"));
    const std::size_t max_words =
        positive_uint(config, "max_words");
    for (auto goal : {spambayes::Verdict::unsure, spambayes::Verdict::ham}) {
      std::size_t evaded = 0;
      std::vector<double> words, queries;
      util::Rng probe_rng(7);
      core::EvadeContext ectx{generator, bound.params, filter, max_words,
                              goal};
      for (int i = 0; i < n; ++i) {
        auto result =
            bound.attack->evade(ectx, generator.generate_spam(probe_rng));
        if (result.evaded) {
          ++evaded;
          words.push_back(static_cast<double>(result.words_added));
          queries.push_back(static_cast<double>(result.queries));
        }
      }
      table.add_row(
          {std::string(spambayes::to_string(goal)), std::to_string(n),
           Table::cell(100.0 * evaded / n, 1),
           evaded ? Table::cell(util::quantile(words, 0.5), 0)
                  : std::string("-"),
           evaded ? Table::cell(util::quantile(queries, 0.5), 0)
                  : std::string("-")});
      doc.add_metric(
          std::string("evaded_to_") +
              std::string(spambayes::to_string(goal)) + "_pct",
          100.0 * evaded / n);
    }

    // The causative comparison: the same victim, poisoned with a small
    // dictionary injection and zero filter queries.
    const double poison_fraction = config.get_double("poison_fraction");
    core::DictionaryAttack poison =
        core::DictionaryAttack::usenet(generator.lexicons());
    std::size_t copies =
        core::attack_message_count(inbox_size, poison_fraction);
    filter.train_spam_copies(poison.attack_message(),
                             static_cast<std::uint32_t>(copies));
    util::Rng ham_rng(8);
    int ham_lost = 0;
    const int poison_probes =
        static_cast<int>(positive_uint(config, "poison_probes"));
    for (int i = 0; i < poison_probes; ++i) {
      ham_lost += filter.classify(generator.generate_ham(ham_rng)).verdict !=
                          spambayes::Verdict::ham
                      ? 1
                      : 0;
    }
    doc.add_metric("poison_copies", static_cast<double>(copies));
    doc.add_metric("poisoned_ham_misdelivered_pct",
                   100.0 * ham_lost / poison_probes);
    doc.report.push_back(strf(
        "causative comparison: %zu poison emails (%g%%) -> %.1f%% of",
        copies, 100.0 * poison_fraction, 100.0 * ham_lost / poison_probes));
    doc.report.push_back(
        "ALL ham misdelivered, zero filter queries needed.");
    return doc;
  }
};

// ---------------------------------------------------------------------------
// ham-labeled — Causative Integrity extension.
// ---------------------------------------------------------------------------

class HamLabeledExperiment : public ExperimentBase {
 public:
  HamLabeledExperiment()
      : ExperimentBase("ham-labeled",
                       "ham-labeled poisoning whitens a spam campaign",
                       "Section 2.2 remark (more powerful attacks)") {
    schema_
        .add("inbox_size", ParamType::kUInt, "10000",
             "victim training-inbox size")
        .add("spam_fraction", ParamType::kDouble, "0.5",
             "spam share of the inbox")
        .add("copies", ParamType::kUIntList, "0,20,50,101,204,526",
             "ham-labeled attack copies swept")
        .add("probes", ParamType::kUInt, "400",
             "campaign-spam / fresh-ham probes per row")
        .add("seed", ParamType::kUInt, "20080406", "master RNG seed");
  }

  std::vector<std::pair<std::string, std::string>> quick_overrides()
      const override {
    return {{"inbox_size", "2000"}, {"probes", "150"}};
  }

  ResultDoc run(const Config& config, const RunContext&) const override {
    const corpus::TrecLikeGenerator generator;
    const std::size_t inbox_size =
        positive_uint(config, "inbox_size");
    util::Rng rng(config.get_uint("seed"));

    // Victim trains on a clean inbox.
    corpus::Dataset inbox = generator.sample_mailbox(
        inbox_size, config.get_double("spam_fraction"), rng);
    spambayes::Tokenizer tokenizer;
    corpus::TokenizedDataset tokenized =
        corpus::tokenize_dataset(inbox, tokenizer);
    spambayes::Filter base;
    for (const auto& item : tokenized.items) {
      if (item.label == corpus::TrueLabel::spam) {
        base.train_spam_ids(item.ids);
      } else {
        base.train_ham_ids(item.ids);
      }
    }

    // The attack email comes from the registry's ham-labeled adapter: the
    // attacker's own campaign vocabulary (the generator's spam word list
    // plus the obfuscated junk tokens) under headers cloned from a real
    // ham message so the email passes as legitimate. What the attacker can
    // NOT whiten are the headers its future campaign will carry, so some
    // spam evidence always survives — that caps the attack at "escapes the
    // spam folder" rather than "always lands as ham".
    const core::Attack& attack =
        core::builtin_attack_registry().get("ham-labeled");
    const util::Config attack_params = attack.default_params();
    const std::optional<core::CanonicalPoison> poison =
        attack.canonical_poison(generator, attack_params, rng);
    const spambayes::TokenSet attack_tokens =
        spambayes::unique_tokens(tokenizer.tokenize(poison->message));

    ResultDoc doc = make_doc(config);
    tag_attack(doc, attack);
    doc.report.push_back(strf(
        "payload: %zu campaign words; attack taxonomy: %s",
        poison->payload_size, attack.properties().description().c_str()));
    doc.report.push_back("");

    // RONI's verdict on the attack email (assessed as if spam-labeled would
    // be, i.e. by its marginal impact on ham classification).
    core::RoniDefense roni({}, {});
    util::Rng roni_rng = rng.fork(1);
    auto assessment = roni.assess(attack_tokens, tokenized, roni_rng);
    doc.report.push_back(strf(
        "RONI-style impact of one attack email on ham-as-ham: %.2f "
        "(threshold %.1f) -> %s",
        assessment.mean_ham_as_ham_decrease,
        roni.config().rejection_threshold,
        assessment.rejected ? "rejected" : "NOT rejected"));
    doc.report.push_back("");
    doc.add_metric("roni_impact", assessment.mean_ham_as_ham_decrease);
    doc.add_metric("roni_rejected", assessment.rejected ? 1.0 : 0.0);

    Table& table = doc.add_table(
        "campaign", {"ham-labeled copies", "% of inbox",
                     "campaign spam->ham %", "campaign spam->unsure %",
                     "fresh ham->ham %"});
    const int n = static_cast<int>(positive_uint(config, "probes"));
    double last_as_ham_pct = 0.0;
    double last_ham_ok_pct = 0.0;
    for (std::uint64_t copies : config.get_uint_list("copies")) {
      spambayes::Filter filter = base;
      filter.train_ham_tokens(attack_tokens,
                              static_cast<std::uint32_t>(copies));
      util::Rng probe_rng(991);  // identical probes per row
      std::size_t as_ham = 0, as_unsure = 0, ham_ok = 0;
      for (int i = 0; i < n; ++i) {
        auto v = filter.classify(generator.generate_spam(probe_rng)).verdict;
        as_ham += v == spambayes::Verdict::ham ? 1 : 0;
        as_unsure += v == spambayes::Verdict::unsure ? 1 : 0;
        ham_ok += filter.classify(generator.generate_ham(probe_rng)).verdict ==
                          spambayes::Verdict::ham
                      ? 1
                      : 0;
      }
      table.add_row(
          {Table::cell(static_cast<std::size_t>(copies)),
           Table::cell(100.0 * static_cast<double>(copies) /
                           static_cast<double>(inbox_size + copies),
                       1),
           Table::cell(100.0 * as_ham / n, 1),
           Table::cell(100.0 * as_unsure / n, 1),
           Table::cell(100.0 * ham_ok / n, 1)});
      last_as_ham_pct = 100.0 * as_ham / n;
      last_ham_ok_pct = 100.0 * ham_ok / n;
    }
    doc.add_metric("max_copies_campaign_as_ham_pct", last_as_ham_pct);
    doc.add_metric("max_copies_fresh_ham_ok_pct", last_ham_ok_pct);
    return doc;
  }
};

// ---------------------------------------------------------------------------
// focused-guessing — §4.3 interpretation ablation (DESIGN.md section 5).
// ---------------------------------------------------------------------------

class FocusedGuessingExperiment : public ExperimentBase {
 public:
  FocusedGuessingExperiment()
      : ExperimentBase(
            "focused-guessing",
            "fixed vs. per-email guess sets in the focused attack",
            "Section 4.3 interpretation (DESIGN.md section 5)") {
    schema_
        .add("inbox_size", ParamType::kUInt, "3000",
             "victim training-inbox size")
        .add("spam_fraction", ParamType::kDouble, "0.5",
             "spam share of the inbox")
        .add("attack", ParamType::kString, "focused",
             "registry attack crafting the per-target poison; must declare "
             "a fresh_guess_per_email parameter for the two guess models "
             "to differ")
        .add("attack_params", ParamType::kString, "",
             kAttackParamsHelp)
        .add("attack_count", ParamType::kUInt, "300",
             "attack emails per target")
        .add("target_count", ParamType::kUInt, "20",
             "target ham emails per guess model and probability")
        .add("guess_probabilities", ParamType::kDoubleList, "0.1,0.3,0.5,0.9",
             "attacker token-guess probabilities p")
        .add("seed", ParamType::kUInt, "20080404", "master RNG seed");
  }

  std::vector<std::pair<std::string, std::string>> quick_overrides()
      const override {
    return {{"inbox_size", "1000"},
            {"attack_count", "100"},
            {"target_count", "10"}};
  }

  ResultDoc run(const Config& config, const RunContext& ctx) const override {
    const corpus::TrecLikeGenerator generator;
    const BoundAttack bound = bind_attack(config.get_string("attack"), config);
    const std::size_t inbox_size = positive_uint(config, "inbox_size");
    const std::size_t attack_count = positive_uint(config, "attack_count");
    const std::size_t targets = positive_uint(config, "target_count");
    const std::vector<double> probabilities =
        config.get_double_list("guess_probabilities");
    const bool poison_spam =
        bound.attack->poison_label() == corpus::TrueLabel::spam;

    util::Rng rng(config.get_uint("seed"));
    corpus::Dataset inbox = generator.sample_mailbox(
        inbox_size, config.get_double("spam_fraction"), rng);
    spambayes::Tokenizer tokenizer;
    spambayes::Filter base;
    std::vector<const email::Message*> spam_headers;
    for (const auto& item : inbox.items) {
      if (item.label == corpus::TrueLabel::spam) {
        base.train_spam(item.message);
        spam_headers.push_back(&item.message);
      } else {
        base.train_ham(item.message);
      }
    }

    // The headline metrics report the LOWEST listed probability (where the
    // two guess models differ most); the list itself runs in given order.
    std::size_t min_pi = 0;
    for (std::size_t i = 1; i < probabilities.size(); ++i) {
      if (probabilities[i] < probabilities[min_pi]) min_pi = i;
    }

    ctx.note(strf("running %zu targets x %zu probabilities x 2 guess "
                  "models...",
                  targets, probabilities.size()));
    ResultDoc doc = make_doc(config);
    tag_attack(doc, *bound.attack);
    Table& table = doc.add_table(
        "models", {"guess model", "p", "target->ham %", "target->unsure %",
                   "target->spam %"});
    for (bool fresh : {false, true}) {
      Series series{std::string(fresh ? "per-email" : "fixed") +
                        " (target misclassified, %)",
                    {}, {}};
      for (std::size_t pi = 0; pi < probabilities.size(); ++pi) {
        const double p = probabilities[pi];
        util::Config params = bound.params;
        if (params.has("guess_probability")) {
          params.set("guess_probability", round_trip_string(p));
        }
        if (params.has("fresh_guess_per_email")) {
          params.set("fresh_guess_per_email", fresh ? "true" : "false");
        }
        std::size_t as[3] = {0, 0, 0};
        for (std::size_t t = 0; t < targets; ++t) {
          util::Rng run_rng = rng.fork(1000 * (fresh ? 2 : 1) + 10 * t +
                                       static_cast<std::uint64_t>(p * 10));
          email::Message target = generator.generate_ham(run_rng);
          const spambayes::TokenSet body_words =
              core::attackable_body_words(target, tokenizer);
          core::CraftContext cctx{generator,    params,      run_rng,
                                  attack_count, &target,     &body_words,
                                  &spam_headers};
          spambayes::Filter filter = base;
          for (const auto& m : bound.attack->craft_poison(cctx)) {
            if (poison_spam) {
              filter.train_spam(m);
            } else {
              filter.train_ham(m);
            }
          }
          as[static_cast<int>(filter.classify(target).verdict)] += 1;
        }
        const double n = static_cast<double>(targets);
        table.add_row({fresh ? "per-email (independent)" : "fixed (paper)",
                       Table::cell(p, 1), Table::cell(100.0 * as[0] / n, 1),
                       Table::cell(100.0 * as[1] / n, 1),
                       Table::cell(100.0 * as[2] / n, 1)});
        series.x.push_back(p);
        series.y.push_back(100.0 * (as[1] + as[2]) / n);
        if (pi == min_pi) {
          doc.add_metric(fresh ? "per_email_min_p_misclassified_pct"
                               : "fixed_min_p_misclassified_pct",
                         100.0 * (as[1] + as[2]) / n);
        }
      }
      doc.series.push_back(std::move(series));
    }
    return doc;
  }
};

}  // namespace

void register_builtin_experiments(Registry& registry) {
  registry.add(std::make_unique<DictionaryExperiment>());
  registry.add(std::make_unique<FocusedKnowledgeExperiment>());
  registry.add(std::make_unique<FocusedSizeExperiment>());
  registry.add(std::make_unique<TokenShiftExperiment>());
  registry.add(std::make_unique<RoniExperiment>());
  registry.add(std::make_unique<ThresholdExperiment>());
  registry.add(std::make_unique<RetrainingExperiment>());
  registry.add(std::make_unique<GoodWordExperiment>());
  registry.add(std::make_unique<HamLabeledExperiment>());
  registry.add(std::make_unique<FocusedGuessingExperiment>());
}

}  // namespace sbx::eval
