// Figures 2, 3 and 4 drivers: the focused (targeted) attack. The
// knowledge/size curves are attack-parametric: poison emails come from a
// core::Attack's craft_poison hook (the CraftContext carries the target
// and the spam header pool), with the registry "focused" adapter
// reproducing the historical driver bit-for-bit.
#include <algorithm>
#include <unordered_set>

#include "core/attack_math.h"
#include "core/attack_registry.h"
#include "eval/attack_axis.h"
#include "eval/experiments.h"
#include "eval/runner.h"
#include "util/error.h"

namespace sbx::eval {
namespace {

/// Per-repetition environment shared by the focused-attack experiments:
/// a fresh clean inbox, the trained base filter, and the pool of spam
/// messages whose headers attack emails clone.
struct FocusedRun {
  corpus::Dataset inbox;
  corpus::TokenizedDataset tokenized;
  spambayes::Filter filter;
  std::vector<const email::Message*> spam_headers;

  FocusedRun(const corpus::TrecLikeGenerator& gen,
             const FocusedConfig& config, util::Rng& rng)
      : filter(config.filter) {
    inbox = gen.sample_mailbox(config.inbox_size, config.spam_fraction, rng);
    tokenized = corpus::tokenize_dataset(
        inbox, spambayes::Tokenizer(config.filter.tokenizer));
    for (std::size_t i = 0; i < inbox.items.size(); ++i) {
      const auto& item = tokenized.items[i];
      if (item.label == corpus::TrueLabel::spam) {
        filter.train_spam_ids(item.ids);
        spam_headers.push_back(&inbox.items[i].message);
      } else {
        filter.train_ham_ids(item.ids);
      }
    }
    if (spam_headers.empty()) {
      throw InvalidArgument("FocusedRun: inbox contains no spam headers");
    }
  }
};

/// Trains the given attack emails under `label`, runs `body`, then
/// untrains them exactly, restoring the filter. Returns body's
/// verdict-relevant result through the callable's side effects.
template <typename Body>
void with_attack_trained(spambayes::Filter& filter,
                         const std::vector<spambayes::TokenIdSet>& attack_ids,
                         std::size_t count, corpus::TrueLabel label,
                         Body&& body) {
  const bool spam = label == corpus::TrueLabel::spam;
  for (std::size_t i = 0; i < count; ++i) {
    if (spam) {
      filter.train_spam_ids(attack_ids[i]);
    } else {
      filter.train_ham_ids(attack_ids[i]);
    }
  }
  body();
  for (std::size_t i = 0; i < count; ++i) {
    if (spam) {
      filter.untrain_spam_ids(attack_ids[i]);
    } else {
      filter.untrain_ham_ids(attack_ids[i]);
    }
  }
}

/// Per-point attack params: `guess_probability` (when the attack declares
/// it) overridden with the point's value, round-trip-formatted so the
/// attack parses back the identical double.
std::vector<util::Config> per_point_params(
    const util::Config& attack_params,
    const std::vector<double>& guess_probabilities) {
  std::vector<util::Config> out(guess_probabilities.size(), attack_params);
  if (attack_params.has("guess_probability")) {
    for (std::size_t pi = 0; pi < guess_probabilities.size(); ++pi) {
      out[pi].set("guess_probability",
                  round_trip_string(guess_probabilities[pi]));
    }
  }
  return out;
}

std::vector<spambayes::TokenIdSet> tokenize_attack_emails(
    const std::vector<email::Message>& emails,
    const spambayes::Tokenizer& tokenizer) {
  std::vector<spambayes::TokenIdSet> out;
  out.reserve(emails.size());
  for (const auto& m : emails) {
    out.push_back(spambayes::unique_token_ids(tokenizer.tokenize_ids(m)));
  }
  return out;
}

}  // namespace

std::vector<FocusedKnowledgePoint> run_focused_knowledge(
    const corpus::TrecLikeGenerator& gen, const core::Attack& attack,
    const util::Config& attack_params,
    const std::vector<double>& guess_probabilities, std::size_t attack_count,
    const FocusedConfig& config) {
  Runner runner(config.seed, config.threads);
  const std::vector<util::Config> point_params =
      per_point_params(attack_params, guess_probabilities);
  const corpus::TrueLabel poison_label = attack.poison_label();

  std::vector<FocusedKnowledgePoint> points(guess_probabilities.size());
  for (std::size_t pi = 0; pi < guess_probabilities.size(); ++pi) {
    points[pi].guess_probability = guess_probabilities[pi];
  }

  // One trial per repetition; targets/probabilities iterate inside so the
  // expensive inbox construction is amortized.
  runner.map_reduce(
      config.repetitions, /*salt=*/1000,
      [&](std::size_t, util::Rng& rng) {
        FocusedRun run(gen, config, rng);
        const spambayes::Tokenizer tokenizer(config.filter.tokenizer);

        std::vector<FocusedKnowledgePoint> local(points.size());
        for (std::size_t t = 0; t < config.target_count; ++t) {
          // Fresh held-out ham target (not part of the training inbox).
          const email::Message target = gen.generate_ham(rng);
          const spambayes::TokenIdSet target_ids =
              run.filter.message_token_ids(target);
          const spambayes::TokenSet body_words =
              core::attackable_body_words(target, tokenizer);
          const bool control_ham =
              run.filter.classify_ids(target_ids).verdict ==
              spambayes::Verdict::ham;

          for (std::size_t pi = 0; pi < guess_probabilities.size(); ++pi) {
            util::Rng attack_rng = rng.fork(7919 * (t + 1) + pi);
            core::CraftContext ctx{gen,     point_params[pi],
                                   attack_rng, attack_count,
                                   &target, &body_words,
                                   &run.spam_headers};
            const auto attack_ids =
                tokenize_attack_emails(attack.craft_poison(ctx), tokenizer);

            spambayes::Verdict verdict = spambayes::Verdict::unsure;
            with_attack_trained(run.filter, attack_ids, attack_ids.size(),
                                poison_label, [&] {
                                  verdict = run.filter
                                                .classify_ids(target_ids)
                                                .verdict;
                                });
            FocusedKnowledgePoint& p = local[pi];
            p.targets += 1;
            p.control_as_ham += control_ham ? 1 : 0;
            switch (verdict) {
              case spambayes::Verdict::ham:
                p.as_ham += 1;
                break;
              case spambayes::Verdict::unsure:
                p.as_unsure += 1;
                break;
              case spambayes::Verdict::spam:
                p.as_spam += 1;
                break;
            }
          }
        }
        return local;
      },
      [&](std::size_t, std::vector<FocusedKnowledgePoint> local) {
        for (std::size_t pi = 0; pi < points.size(); ++pi) {
          points[pi].targets += local[pi].targets;
          points[pi].as_ham += local[pi].as_ham;
          points[pi].as_unsure += local[pi].as_unsure;
          points[pi].as_spam += local[pi].as_spam;
          points[pi].control_as_ham += local[pi].control_as_ham;
        }
      });
  return points;
}

std::vector<FocusedSizePoint> run_focused_size(
    const corpus::TrecLikeGenerator& gen, const core::Attack& attack,
    const util::Config& attack_params, double guess_probability,
    const std::vector<double>& attack_fractions, const FocusedConfig& config) {
  Runner runner(config.seed, config.threads);
  const std::vector<util::Config> point_params =
      per_point_params(attack_params, {guess_probability});
  const corpus::TrueLabel poison_label = attack.poison_label();
  const bool poison_spam = poison_label == corpus::TrueLabel::spam;

  std::vector<double> fractions = attack_fractions;
  std::sort(fractions.begin(), fractions.end());

  std::vector<FocusedSizePoint> points(fractions.size());

  runner.map_reduce(
      config.repetitions, /*salt=*/2000,
      [&](std::size_t, util::Rng& rng) {
        FocusedRun run(gen, config, rng);
        const spambayes::Tokenizer tokenizer(config.filter.tokenizer);
        const std::size_t max_messages = core::attack_message_count(
            config.inbox_size, fractions.back());

        std::vector<FocusedSizePoint> local(fractions.size());
        for (std::size_t t = 0; t < config.target_count; ++t) {
          const email::Message target = gen.generate_ham(rng);
          const spambayes::TokenIdSet target_ids =
              run.filter.message_token_ids(target);
          const spambayes::TokenSet body_words =
              core::attackable_body_words(target, tokenizer);

          util::Rng attack_rng = rng.fork(104729 * (t + 1));
          core::CraftContext ctx{gen,     point_params.front(),
                                 attack_rng, max_messages,
                                 &target, &body_words,
                                 &run.spam_headers};
          const auto attack_ids =
              tokenize_attack_emails(attack.craft_poison(ctx), tokenizer);

          // Ascending sweep: train incrementally, then untrain everything.
          std::size_t trained = 0;
          for (std::size_t pi = 0; pi < fractions.size(); ++pi) {
            const std::size_t want = core::attack_message_count(
                config.inbox_size, fractions[pi]);
            for (; trained < want; ++trained) {
              if (poison_spam) {
                run.filter.train_spam_ids(attack_ids[trained]);
              } else {
                run.filter.train_ham_ids(attack_ids[trained]);
              }
            }
            spambayes::Verdict verdict =
                run.filter.classify_ids(target_ids).verdict;
            FocusedSizePoint& p = local[pi];
            p.targets += 1;
            p.as_spam += verdict == spambayes::Verdict::spam ? 1 : 0;
            p.as_unsure_or_spam +=
                verdict != spambayes::Verdict::ham ? 1 : 0;
          }
          for (std::size_t i = 0; i < trained; ++i) {
            if (poison_spam) {
              run.filter.untrain_spam_ids(attack_ids[i]);
            } else {
              run.filter.untrain_ham_ids(attack_ids[i]);
            }
          }
        }
        return local;
      },
      [&](std::size_t, std::vector<FocusedSizePoint> local) {
        for (std::size_t pi = 0; pi < fractions.size(); ++pi) {
          points[pi].targets += local[pi].targets;
          points[pi].as_spam += local[pi].as_spam;
          points[pi].as_unsure_or_spam += local[pi].as_unsure_or_spam;
        }
      });

  for (std::size_t pi = 0; pi < fractions.size(); ++pi) {
    points[pi].attack_fraction = fractions[pi];
    points[pi].attack_messages =
        core::attack_message_count(config.inbox_size, fractions[pi]);
  }
  return points;
}

std::vector<FocusedKnowledgePoint> run_focused_knowledge(
    const corpus::TrecLikeGenerator& gen,
    const std::vector<double>& guess_probabilities, std::size_t attack_count,
    const FocusedConfig& config) {
  const core::Attack& attack = core::builtin_attack_registry().get("focused");
  return run_focused_knowledge(gen, attack, attack.default_params(),
                               guess_probabilities, attack_count, config);
}

std::vector<FocusedSizePoint> run_focused_size(
    const corpus::TrecLikeGenerator& gen, double guess_probability,
    const std::vector<double>& attack_fractions, const FocusedConfig& config) {
  const core::Attack& attack = core::builtin_attack_registry().get("focused");
  return run_focused_size(gen, attack, attack.default_params(),
                          guess_probability, attack_fractions, config);
}

std::vector<TokenShiftExample> run_token_shift(
    const corpus::TrecLikeGenerator& gen, double guess_probability,
    std::size_t attack_count, const FocusedConfig& config,
    std::size_t max_targets) {
  util::Rng rng(config.seed);
  FocusedRun run(gen, config, rng);
  const spambayes::Tokenizer tokenizer(config.filter.tokenizer);
  const spambayes::Classifier& classifier = run.filter.classifier();

  bool have_spam = false;
  bool have_unsure = false;
  bool have_ham = false;
  std::vector<TokenShiftExample> examples;

  for (std::size_t t = 0; t < max_targets; ++t) {
    if (have_spam && have_unsure && have_ham) break;
    const email::Message target = gen.generate_ham(rng);
    // One tokenizer pass; spellings for the report are resolved from ids.
    const spambayes::TokenIdSet target_ids =
        run.filter.message_token_ids(target);
    const spambayes::TokenSet body_words =
        core::attackable_body_words(target, tokenizer);

    core::FocusedAttackConfig attack_config;
    attack_config.guess_probability = guess_probability;
    util::Rng attack_rng = rng.fork(15485863 * (t + 1));
    core::FocusedAttack attack(attack_config, body_words, attack_rng);
    std::vector<email::Message> attack_emails =
        attack.generate(run.spam_headers, attack_count, attack_rng);

    // Token scores before. Shift points are reported in spelling order
    // (the order the string path produced).
    const double score_before = run.filter.classify_ids(target_ids).score;
    const spambayes::TokenInterner& interner = spambayes::global_interner();
    std::vector<spambayes::TokenId> report_ids = target_ids;
    std::sort(report_ids.begin(), report_ids.end(),
              [&](spambayes::TokenId a, spambayes::TokenId b) {
                return interner.spelling(a) < interner.spelling(b);
              });
    std::vector<TokenShiftPoint> shift;
    shift.reserve(report_ids.size());
    for (spambayes::TokenId id : report_ids) {
      TokenShiftPoint p;
      p.token = std::string(interner.spelling(id));
      p.score_before = classifier.token_score(run.filter.database(), id);
      shift.push_back(std::move(p));
    }

    std::vector<spambayes::TokenIdSet> attack_ids;
    attack_ids.reserve(attack_emails.size());
    for (const auto& m : attack_emails) {
      attack_ids.push_back(
          spambayes::unique_token_ids(tokenizer.tokenize_ids(m)));
    }
    const std::unordered_set<std::string> guessed(
        attack.guessed_words().begin(), attack.guessed_words().end());

    for (const auto& ids : attack_ids) {
      run.filter.train_spam_ids(ids);
    }
    const spambayes::ScoreIdResult after =
        run.filter.classify_ids(target_ids);
    for (std::size_t i = 0; i < shift.size(); ++i) {
      TokenShiftPoint& p = shift[i];
      p.score_after =
          classifier.token_score(run.filter.database(), report_ids[i]);
      p.in_attack = guessed.count(p.token) != 0;
    }
    for (const auto& ids : attack_ids) {
      run.filter.untrain_spam_ids(ids);
    }

    bool* flag = nullptr;
    switch (after.verdict) {
      case spambayes::Verdict::spam:
        flag = &have_spam;
        break;
      case spambayes::Verdict::unsure:
        flag = &have_unsure;
        break;
      case spambayes::Verdict::ham:
        flag = &have_ham;
        break;
    }
    if (flag != nullptr && !*flag) {
      *flag = true;
      TokenShiftExample ex;
      ex.verdict_after = after.verdict;
      ex.message_score_before = score_before;
      ex.message_score_after = after.score;
      ex.tokens = std::move(shift);
      examples.push_back(std::move(ex));
    }
  }
  return examples;
}

}  // namespace sbx::eval
