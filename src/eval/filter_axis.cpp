#include "eval/filter_axis.h"

#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"
#include "util/strings.h"

namespace sbx::eval {
namespace {

spambayes::TokenizerOptions preset_named(std::string_view name) {
  if (name == "spambayes") return spambayes::TokenizerFlavors::spambayes();
  if (name == "bogofilter") return spambayes::TokenizerFlavors::bogofilter();
  if (name == "spamassassin") {
    return spambayes::TokenizerFlavors::spamassassin();
  }
  throw InvalidArgument(util::unknown_name_message(
      "tokenizer preset", name, {"bogofilter", "spamassassin", "spambayes"}));
}

void apply_override(spambayes::TokenizerOptions& opts, std::string_view key,
                    std::string_view value) {
  if (key == "min_token_length") {
    opts.min_token_length = util::parse_uint(value, key);
  } else if (key == "max_token_length") {
    opts.max_token_length = util::parse_uint(value, key);
  } else if (key == "generate_skip_tokens") {
    opts.generate_skip_tokens = util::parse_bool(value, key);
  } else if (key == "tokenize_headers") {
    opts.tokenize_headers = util::parse_bool(value, key);
  } else if (key == "prefix_header_tokens") {
    opts.prefix_header_tokens = util::parse_bool(value, key);
  } else if (key == "tokenize_urls") {
    opts.tokenize_urls = util::parse_bool(value, key);
  } else {
    throw InvalidArgument(util::unknown_name_message(
        "tokenizer parameter", key,
        {"generate_skip_tokens", "max_token_length", "min_token_length",
         "prefix_header_tokens", "tokenize_headers", "tokenize_urls"}));
  }
}

}  // namespace

void add_tokenizer_axis(util::ConfigSchema& schema) {
  schema
      .add("tokenizer", util::ParamType::kString, "spambayes",
           "tokenizer preset: spambayes | bogofilter | spamassassin "
           "(footnote 1 filter flavors)")
      .add("tokenizer_params", util::ParamType::kString, "",
           "'key=value;key=value' TokenizerOptions overrides on top of the "
           "preset: min_token_length, max_token_length, "
           "generate_skip_tokens, tokenize_headers, prefix_header_tokens, "
           "tokenize_urls");
}

spambayes::FilterOptions resolve_filter_options(const util::Config& config) {
  spambayes::FilterOptions out;
  out.tokenizer = preset_named(config.get_string("tokenizer"));
  const std::string params = config.get_string("tokenizer_params");
  std::string_view rest = params;
  while (!rest.empty()) {
    const std::size_t sep = rest.find(';');
    const std::string_view pair =
        sep == std::string_view::npos ? rest : rest.substr(0, sep);
    rest = sep == std::string_view::npos ? std::string_view{}
                                         : rest.substr(sep + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      throw InvalidArgument("tokenizer_params: expected key=value, got '" +
                            std::string(pair) + "'");
    }
    apply_override(out.tokenizer, pair.substr(0, eq), pair.substr(eq + 1));
  }
  return out;
}

}  // namespace sbx::eval
