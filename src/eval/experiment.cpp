#include "eval/experiment.h"

namespace sbx::eval {

Config resolve_config(const Experiment& experiment, bool quick,
                      const std::vector<std::string>& overrides,
                      std::optional<std::uint64_t> seed) {
  Config config = experiment.default_config();
  if (quick) {
    for (const auto& [key, value] : experiment.quick_overrides()) {
      config.set(key, value);
    }
  }
  for (const auto& assignment : overrides) {
    config.set_key_value(assignment);
  }
  if (seed.has_value() && config.has("seed")) {
    config.set("seed", std::to_string(*seed));
  }
  return config;
}

}  // namespace sbx::eval
