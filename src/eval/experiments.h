// sbx/eval/experiments.h
//
// Experiment drivers regenerating every figure and table of the paper's
// evaluation (§4-§5). Each driver owns the full pipeline — corpus sampling,
// cross-validation, attack injection, measurement — and returns plain
// result structs; the bench binaries only format them. Tests run the same
// drivers at reduced scale.
//
// Determinism: every driver forks all randomness from its config seed, and
// parallelism (folds / repetitions across threads) never changes results.
// All drivers execute through eval::Runner (runner.h), which enforces this:
// per-trial RNG streams are pre-forked from the master stream in program
// order and results are merged in trial order, so thread count affects
// wall-clock time only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/attack.h"
#include "core/dictionary_attack.h"
#include "core/dynamic_threshold.h"
#include "core/focused_attack.h"
#include "core/roni.h"
#include "corpus/dataset.h"
#include "corpus/generator.h"
#include "eval/metrics.h"
#include "spambayes/filter.h"
#include "util/stats.h"

namespace sbx::eval {

// ---------------------------------------------------------------------------
// Generic poison description — what the Causative drivers consume.
// ---------------------------------------------------------------------------

/// One identical-copy Causative attack, reduced to what the drivers need:
/// the canonical message, the label its copies are trained under, and the
/// optional BadNets trigger the attacker stamps onto its own post-poison
/// spam. Built from a registry attack by eval::resolve_poison
/// (attack_axis.h) or from a core::DictionaryAttack by poison_spec_from.
struct PoisonSpec {
  std::string name;              // display name, e.g. "usenet-90000"
  std::size_t payload_size = 0;  // dictionary/payload words
  email::Message message;        // the canonical attack email
  corpus::TrueLabel train_as = corpus::TrueLabel::spam;
  /// Trigger tokens stamped onto the attacker's future spam (empty for
  /// attacks whose future mail is unmodified). When set, the dictionary
  /// and retraining drivers additionally measure trigger-stamped spam.
  std::vector<std::string> trigger;
};

/// The spec of a dictionary-family attack (spam-labeled, no trigger).
PoisonSpec poison_spec_from(const core::DictionaryAttack& attack);

/// The spec's trigger tokens as the deduplicated id set that stamping
/// them onto a message produces (empty when the attack has no trigger).
/// Single home for the trigger-text tokenization so the dictionary and
/// retraining measurements cannot diverge.
spambayes::TokenIdSet trigger_token_ids(const PoisonSpec& spec,
                                        const spambayes::Tokenizer& tokenizer);

// ---------------------------------------------------------------------------
// Figure 1: dictionary attacks vs. percent control of the training set.
// ---------------------------------------------------------------------------

/// Parameters (defaults = Table 1, large configuration: 10,000-message
/// training set, 50% spam, 10-fold cross-validation).
struct DictionaryCurveConfig {
  std::size_t training_set_size = 10'000;
  double spam_fraction = 0.5;
  /// Attack strength as fraction of the *final* training set; 0 (control)
  /// is always measured and need not be listed.
  std::vector<double> attack_fractions = {0.001, 0.005, 0.01,
                                          0.02,  0.05,  0.10};
  std::size_t folds = 10;
  std::uint64_t seed = 20080401;
  spambayes::FilterOptions filter;
  std::size_t threads = 0;  // 0 = hardware concurrency
};

/// One point of a Figure-1 curve (fold-aggregated).
struct DictionaryCurvePoint {
  double attack_fraction = 0.0;
  std::size_t attack_messages = 0;  // per fold, a = clean*f/(1-f)
  /// Ratio of attack token instances to clean-corpus token instances
  /// (the §4.2 statistic: ~7x for Aspell at 2%).
  double attack_token_ratio = 0.0;
  ConfusionMatrix matrix;
  /// Per-fold ham-misclassification rates — the spread behind the paper's
  /// "variation on our tests was small" remark (§4.1).
  util::RunningStats ham_misclassified_by_fold;
  /// BadNets measurement, filled only when the attack defines trigger
  /// tokens: every test-fold spam message re-classified with the trigger
  /// stamped in (true label spam; "leak" = not filed as spam).
  ConfusionMatrix triggered;
};

/// A full curve for one attack variant. points[0] is the control (no
/// attack).
struct DictionaryCurve {
  std::string attack_name;
  std::size_t dictionary_size = 0;
  bool has_trigger = false;  // whether points[i].triggered is meaningful
  std::vector<DictionaryCurvePoint> points;
};

/// Generic Causative driver: trains `spec.message` copies under
/// `spec.train_as` at each attack fraction. For a spam-labeled spec with
/// no trigger this is bit-identical to the historical dictionary driver.
DictionaryCurve run_dictionary_curve(const corpus::TrecLikeGenerator& gen,
                                     const PoisonSpec& spec,
                                     const DictionaryCurveConfig& config);

inline DictionaryCurve run_dictionary_curve(
    const corpus::TrecLikeGenerator& gen, const core::DictionaryAttack& attack,
    const DictionaryCurveConfig& config) {
  return run_dictionary_curve(gen, poison_spec_from(attack), config);
}

// ---------------------------------------------------------------------------
// Figures 2 & 3: the focused attack.
// ---------------------------------------------------------------------------

/// Shared focused-attack experiment parameters (Table 1: 5,000-message
/// inbox, 50% spam, 20 targets, 5 repetitions).
struct FocusedConfig {
  std::size_t inbox_size = 5'000;
  double spam_fraction = 0.5;
  std::size_t target_count = 20;
  std::size_t repetitions = 5;
  std::uint64_t seed = 20080402;
  spambayes::FilterOptions filter;
  std::size_t threads = 0;
};

/// Figure 2: post-attack verdict distribution of the targets as a function
/// of the attacker's knowledge p.
struct FocusedKnowledgePoint {
  double guess_probability = 0.0;
  std::size_t targets = 0;      // total (target, repetition) runs
  std::size_t as_ham = 0;       // still delivered
  std::size_t as_unsure = 0;
  std::size_t as_spam = 0;
  std::size_t control_as_ham = 0;  // pre-attack sanity: targets are ham
};

/// Attack-parametric form: `attack` crafts the per-target poison through
/// core::Attack::craft_poison (the CraftContext carries the target, its
/// attacker-guessable body words and the spam header pool). When the
/// attack declares a "guess_probability" parameter it is overridden per
/// point; other attacks run once per listed probability with identical
/// poison (the x-axis degenerates, but indiscriminate attacks remain
/// comparable against the focused curves).
std::vector<FocusedKnowledgePoint> run_focused_knowledge(
    const corpus::TrecLikeGenerator& gen, const core::Attack& attack,
    const util::Config& attack_params,
    const std::vector<double>& guess_probabilities, std::size_t attack_count,
    const FocusedConfig& config);

/// Historical form: the registry "focused" attack with default params.
std::vector<FocusedKnowledgePoint> run_focused_knowledge(
    const corpus::TrecLikeGenerator& gen,
    const std::vector<double>& guess_probabilities, std::size_t attack_count,
    const FocusedConfig& config);

/// Figure 3: misclassification of the target as a function of attack size
/// (guess probability fixed, paper: p = 0.5).
struct FocusedSizePoint {
  double attack_fraction = 0.0;
  std::size_t attack_messages = 0;
  std::size_t targets = 0;
  std::size_t as_spam = 0;
  std::size_t as_unsure_or_spam = 0;
};

std::vector<FocusedSizePoint> run_focused_size(
    const corpus::TrecLikeGenerator& gen, const core::Attack& attack,
    const util::Config& attack_params, double guess_probability,
    const std::vector<double>& attack_fractions, const FocusedConfig& config);

/// Historical form: the registry "focused" attack with default params.
std::vector<FocusedSizePoint> run_focused_size(
    const corpus::TrecLikeGenerator& gen, double guess_probability,
    const std::vector<double>& attack_fractions, const FocusedConfig& config);

// ---------------------------------------------------------------------------
// Figure 4: per-token score shift under the focused attack.
// ---------------------------------------------------------------------------

/// One token of the target email before/after the attack.
struct TokenShiftPoint {
  std::string token;
  double score_before = 0.5;  // f(w), Eq. 2
  double score_after = 0.5;
  bool in_attack = false;  // did the attacker guess this token?
};

/// One representative target email (the paper shows three: post-attack
/// spam, unsure, and ham).
struct TokenShiftExample {
  spambayes::Verdict verdict_after = spambayes::Verdict::unsure;
  double message_score_before = 0.0;
  double message_score_after = 0.0;
  std::vector<TokenShiftPoint> tokens;
};

/// Runs focused attacks on fresh targets until one example of each
/// requested post-attack verdict is found (or `max_targets` tried).
std::vector<TokenShiftExample> run_token_shift(
    const corpus::TrecLikeGenerator& gen, double guess_probability,
    std::size_t attack_count, const FocusedConfig& config,
    std::size_t max_targets = 60);

// ---------------------------------------------------------------------------
// §5.1: the RONI defense.
// ---------------------------------------------------------------------------

/// Parameters (defaults = §5.1: 120 non-attack spam queries, 15 repetitions
/// of each dictionary-attack variant, T=20/V=50/5 resamples inside RONI).
struct RoniExperimentConfig {
  core::RoniConfig roni;
  std::size_t pool_size = 1'000;  // clean pool RONI samples (T, V) from
  double spam_fraction = 0.5;
  std::size_t nonattack_queries = 120;
  std::size_t attack_repetitions = 15;
  std::uint64_t seed = 20080403;
  spambayes::FilterOptions filter;
  std::size_t threads = 0;
};

/// Aggregated assessment outcomes for one query class.
struct RoniVariantResult {
  std::string name;
  util::RunningStats impact;  // ham-as-ham decrease per assessment
  std::size_t assessed = 0;
  std::size_t rejected = 0;

  double rejection_rate() const {
    return assessed == 0
               ? 0.0
               : static_cast<double>(rejected) / static_cast<double>(assessed);
  }
};

struct RoniExperimentResult {
  RoniVariantResult nonattack_spam;  // rejections here are false positives
  std::vector<RoniVariantResult> attack_variants;
};

/// One named attack query RONI assesses `attack_repetitions` times.
struct RoniQuery {
  std::string name;
  email::Message message;
};

RoniExperimentResult run_roni_experiment(const corpus::TrecLikeGenerator& gen,
                                         const std::vector<RoniQuery>& queries,
                                         const RoniExperimentConfig& config);

/// Historical form over dictionary-attack variants.
RoniExperimentResult run_roni_experiment(
    const corpus::TrecLikeGenerator& gen,
    const std::vector<const core::DictionaryAttack*>& attacks,
    const RoniExperimentConfig& config);

// ---------------------------------------------------------------------------
// Figure 5: the dynamic threshold defense vs. the dictionary attack.
// ---------------------------------------------------------------------------

struct ThresholdDefenseConfig {
  DictionaryCurveConfig base;
  /// Defense variants; paper: Threshold-.05 = (0.05, 0.95) and
  /// Threshold-.10 = (0.10, 0.90).
  std::vector<core::DynamicThresholdConfig> variants = {{0.05, 0.95},
                                                        {0.10, 0.90}};
};

struct ThresholdCurvePoint {
  double attack_fraction = 0.0;
  std::size_t attack_messages = 0;
  ConfusionMatrix no_defense;
  std::vector<ConfusionMatrix> defended;  // parallel to config.variants
  /// Fold-averaged selected thresholds, parallel to config.variants.
  std::vector<core::ThresholdPair> mean_thresholds;
};

std::vector<ThresholdCurvePoint> run_threshold_defense_curve(
    const corpus::TrecLikeGenerator& gen, const PoisonSpec& spec,
    const ThresholdDefenseConfig& config);

inline std::vector<ThresholdCurvePoint> run_threshold_defense_curve(
    const corpus::TrecLikeGenerator& gen, const core::DictionaryAttack& attack,
    const ThresholdDefenseConfig& config) {
  return run_threshold_defense_curve(gen, poison_spec_from(attack), config);
}

// ---------------------------------------------------------------------------
// Shared helpers (exposed for tests).
// ---------------------------------------------------------------------------

/// Trains a filter on the given items of a tokenized dataset.
void train_on_indices(spambayes::Filter& filter,
                      const corpus::TokenizedDataset& data,
                      const std::vector<std::size_t>& indices);

/// Classifies the given items and accumulates a confusion matrix.
ConfusionMatrix classify_indices(const spambayes::Filter& filter,
                                 const corpus::TokenizedDataset& data,
                                 const std::vector<std::size_t>& indices);

/// Total raw (with duplicates) token count of a dataset under a tokenizer —
/// the denominator of the §4.2 token-ratio statistic.
std::size_t raw_token_count(const corpus::Dataset& data,
                            const spambayes::Tokenizer& tokenizer);

}  // namespace sbx::eval
