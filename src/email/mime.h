// sbx/email/mime.h
//
// Just enough MIME to extract tokenizable text from real-world mail:
// Content-Type parsing (type/subtype + parameters, notably `boundary` and
// `charset`), Content-Transfer-Encoding decoding (base64 and
// quoted-printable), and recursive multipart traversal that concatenates
// every text/* part. The TREC 2005 corpus the paper uses is raw mail with
// all of these, so the substrate must handle them even though our synthetic
// generator mostly emits 7-bit text/plain.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "email/message.h"

namespace sbx::email {

/// Parsed Content-Type header value.
struct ContentType {
  std::string type = "text";      // lower-cased major type
  std::string subtype = "plain";  // lower-cased subtype
  std::map<std::string, std::string> params;  // lower-cased keys

  bool is_multipart() const { return type == "multipart"; }
  bool is_text() const { return type == "text"; }

  /// The boundary parameter, or empty when absent.
  std::string boundary() const;
};

/// Parses a Content-Type header value, e.g.
/// `multipart/mixed; boundary="xyz"; charset=utf-8`. Tolerant: an
/// unparseable value yields the text/plain default.
ContentType parse_content_type(std::string_view value);

/// Decodes base64 text (whitespace is skipped; padding optional). Invalid
/// characters are ignored, matching permissive mail-client behaviour.
std::string decode_base64(std::string_view input);

/// Encodes bytes as base64 with no line breaks (used by tests/generator).
std::string encode_base64(std::string_view input);

/// Decodes quoted-printable text, including soft line breaks ("=\n").
std::string decode_quoted_printable(std::string_view input);

/// Encodes text as quoted-printable (soft-wrapped at 76 columns).
std::string encode_quoted_printable(std::string_view input);

/// Applies the message's Content-Transfer-Encoding to its body. Unknown or
/// identity encodings (7bit, 8bit, binary) return the body unchanged.
std::string decode_transfer_encoding(std::string_view body,
                                     std::string_view encoding);

/// Extracts all tokenizable text from a message: decodes the transfer
/// encoding and, for multipart messages, recursively concatenates every
/// text/* part (separated by newlines). Non-text leaf parts are skipped.
/// Depth is limited to guard against adversarial nesting.
std::string extract_text(const Message& msg, int max_depth = 8);

}  // namespace sbx::email
