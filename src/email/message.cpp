#include "email/message.h"

#include <algorithm>

#include "util/strings.h"

namespace sbx::email {

void Message::add_header(std::string name, std::string value) {
  headers_.push_back({std::move(name), std::move(value)});
}

std::optional<std::string> Message::header(std::string_view name) const {
  for (const auto& h : headers_) {
    if (util::iequals(h.name, name)) return h.value;
  }
  return std::nullopt;
}

std::vector<std::string> Message::all_headers(std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& h : headers_) {
    if (util::iequals(h.name, name)) out.push_back(h.value);
  }
  return out;
}

bool Message::has_header(std::string_view name) const {
  return header(name).has_value();
}

std::size_t Message::remove_headers(std::string_view name) {
  auto it = std::remove_if(headers_.begin(), headers_.end(),
                           [name](const HeaderField& h) {
                             return util::iequals(h.name, name);
                           });
  std::size_t removed = static_cast<std::size_t>(headers_.end() - it);
  headers_.erase(it, headers_.end());
  return removed;
}

}  // namespace sbx::email
