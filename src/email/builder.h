// sbx/email/builder.h
//
// Fluent construction of Message objects. Used by the corpus generator to
// synthesize realistic mail and by the attacks to craft poison messages
// (which per the paper's threat model have attacker-chosen bodies but
// restricted headers).
#pragma once

#include <string>
#include <vector>

#include "email/message.h"

namespace sbx::email {

/// Builder for Message. All setters return *this for chaining; build() can
/// be called repeatedly (it copies the current state).
class MessageBuilder {
 public:
  MessageBuilder& from(std::string addr);
  MessageBuilder& to(std::string addr);
  MessageBuilder& subject(std::string subject);
  MessageBuilder& date(std::string rfc2822_date);
  MessageBuilder& message_id(std::string id);
  /// Adds an arbitrary header field.
  MessageBuilder& header(std::string name, std::string value);
  MessageBuilder& body(std::string text);

  /// Sets the body to the given words laid out `words_per_line` per line.
  /// This is how attack emails serialize their token payloads.
  MessageBuilder& body_from_words(const std::vector<std::string>& words,
                                  std::size_t words_per_line = 12);

  /// Produces the message.
  Message build() const;

 private:
  std::vector<HeaderField> headers_;
  std::string body_;
};

}  // namespace sbx::email
