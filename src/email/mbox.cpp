#include "email/mbox.h"

#include <fstream>
#include <sstream>

#include "email/rfc2822.h"
#include "util/error.h"
#include "util/strings.h"

namespace sbx::email {
namespace {

bool is_envelope_line(std::string_view line) {
  return line.substr(0, 5) == "From ";
}

}  // namespace

std::vector<Message> parse_mbox(std::string_view data) {
  std::vector<Message> out;
  if (util::trim(data).empty()) return out;

  std::vector<std::string> current;
  bool in_message = false;
  auto flush = [&] {
    if (!in_message) return;
    std::string raw;
    for (auto& line : current) {
      // Unquote ">From " at line start (mboxo quoting).
      if (line.substr(0, 6) == ">From ") {
        raw.append(line.substr(1));
      } else {
        raw.append(line);
      }
      raw.push_back('\n');
    }
    out.push_back(parse_message(raw));
    current.clear();
  };

  std::size_t pos = 0;
  while (pos <= data.size()) {
    std::size_t nl = data.find('\n', pos);
    std::string_view line = nl == std::string_view::npos
                                ? data.substr(pos)
                                : data.substr(pos, nl - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (is_envelope_line(line)) {
      flush();
      in_message = true;  // envelope line itself is not part of the message
    } else if (in_message) {
      current.emplace_back(line);
    } else if (!util::trim(line).empty()) {
      throw ParseError("mbox: content before first envelope line");
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  flush();
  if (out.empty()) throw ParseError("mbox: no messages found");
  return out;
}

std::vector<Message> read_mbox_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IoError("mbox: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_mbox(ss.str());
}

std::string render_mbox(const std::vector<Message>& messages) {
  std::string out;
  for (const auto& msg : messages) {
    std::string from =
        msg.header("From").value_or("MAILER-DAEMON@localhost");
    out += "From " + from + " Thu Jan  1 00:00:00 1970\n";
    std::string rendered = render_message(msg);
    // Quote body/header lines that would be mistaken for envelopes.
    std::size_t pos = 0;
    while (pos < rendered.size()) {
      std::size_t nl = rendered.find('\n', pos);
      if (nl == std::string::npos) nl = rendered.size() - 1;
      std::string_view line(rendered.data() + pos, nl - pos);
      if (is_envelope_line(line)) out.push_back('>');
      out.append(rendered, pos, nl - pos + 1);
      pos = nl + 1;
    }
    if (out.empty() || out.back() != '\n') out.push_back('\n');
    out.push_back('\n');  // message separator blank line
  }
  return out;
}

void write_mbox_file(const std::string& path,
                     const std::vector<Message>& messages) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw IoError("mbox: cannot open for write: " + path);
  f << render_mbox(messages);
  if (!f) throw IoError("mbox: write failed: " + path);
}

}  // namespace sbx::email
