// sbx/email/message.h
//
// In-memory representation of an RFC 2822 email message: an ordered list of
// header fields plus an opaque body. Header order and duplicates are
// preserved (both matter for faithful re-rendering and for header
// tokenization), while lookup is case-insensitive per RFC 2822 §2.2.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sbx::email {

/// One header field: name and (unfolded) value.
struct HeaderField {
  std::string name;
  std::string value;
};

/// A parsed email message.
class Message {
 public:
  Message() = default;
  Message(std::vector<HeaderField> headers, std::string body)
      : headers_(std::move(headers)), body_(std::move(body)) {}

  const std::vector<HeaderField>& headers() const { return headers_; }
  const std::string& body() const { return body_; }

  /// Replaces the body.
  void set_body(std::string body) { body_ = std::move(body); }

  /// Appends a header field (keeps duplicates and order).
  void add_header(std::string name, std::string value);

  /// First header with the given name (case-insensitive), if any.
  std::optional<std::string> header(std::string_view name) const;

  /// All values for the given header name (case-insensitive), in order.
  std::vector<std::string> all_headers(std::string_view name) const;

  /// True if at least one header with this name exists.
  bool has_header(std::string_view name) const;

  /// Removes every header with the given name; returns how many were removed.
  std::size_t remove_headers(std::string_view name);

  /// Replaces this message's entire header block with another message's
  /// (used by the focused attack, which clones a real spam header per §4.1).
  void set_headers(std::vector<HeaderField> headers) {
    headers_ = std::move(headers);
  }

  /// Total number of header fields.
  std::size_t header_count() const { return headers_.size(); }

 private:
  std::vector<HeaderField> headers_;
  std::string body_;
};

}  // namespace sbx::email
