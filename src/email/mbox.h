// sbx/email/mbox.h
//
// Reader/writer for the classic mboxo mailbox format ("From " separator
// lines, ">From " quoting). This is how the TREC-style corpora are stored on
// disk and how the sb_filter example consumes mail.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "email/message.h"

namespace sbx::email {

/// Parses an mbox-formatted string into messages. Each message starts at a
/// line beginning with "From " (the envelope line, which is consumed, not
/// kept as a header). Body lines beginning with ">From " are unquoted to
/// "From ". Returns an empty vector for empty input; throws ParseError if
/// the input is non-empty but contains no envelope line.
std::vector<Message> parse_mbox(std::string_view data);

/// Reads and parses an mbox file. Throws IoError if unreadable.
std::vector<Message> read_mbox_file(const std::string& path);

/// Renders messages to mbox format, adding envelope lines and quoting body
/// lines that begin with "From ".
std::string render_mbox(const std::vector<Message>& messages);

/// Writes messages to an mbox file. Throws IoError on failure.
void write_mbox_file(const std::string& path,
                     const std::vector<Message>& messages);

}  // namespace sbx::email
