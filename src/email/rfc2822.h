// sbx/email/rfc2822.h
//
// RFC 2822 message parsing and rendering: header block / body split,
// header folding (continuation lines) and unfolding, tolerant handling of
// the malformed mail that real spam corpora are full of. The parser never
// throws on merely ugly input — a spam filter must score whatever arrives —
// but does throw ParseError on input that cannot be a message at all.
#pragma once

#include <string>
#include <string_view>

#include "email/message.h"

namespace sbx::email {

/// Parsing options.
struct ParseOptions {
  /// When true, a line in the header block that is neither a valid
  /// "Name: value" field nor a continuation is folded into the body
  /// (tolerant mode, like real mail clients). When false it raises
  /// ParseError.
  bool lenient = true;
};

/// Parses one RFC 2822 message (headers + body). Accepts both CRLF and LF
/// line endings. An empty header block (message starting with a blank line
/// or with a non-header line in lenient mode) yields a body-only message.
Message parse_message(std::string_view raw, const ParseOptions& opts = {});

/// Renders a message back to RFC 2822 text with LF line endings, folding
/// header lines longer than 78 characters at whitespace where possible.
std::string render_message(const Message& msg);

}  // namespace sbx::email
