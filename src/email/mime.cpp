#include "email/mime.h"

#include <array>
#include <cctype>

#include "email/rfc2822.h"
#include "util/strings.h"

namespace sbx::email {
namespace {

constexpr std::string_view kBase64Alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int, 256> build_base64_reverse() {
  std::array<int, 256> rev{};
  rev.fill(-1);
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<unsigned char>(kBase64Alphabet[i])] = i;
  }
  return rev;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string ContentType::boundary() const {
  auto it = params.find("boundary");
  return it == params.end() ? std::string() : it->second;
}

ContentType parse_content_type(std::string_view value) {
  ContentType ct;
  auto parts = util::split(value, ';');
  if (parts.empty()) return ct;

  auto media = util::trim(parts[0]);
  auto slash = media.find('/');
  if (slash != std::string_view::npos && slash > 0 &&
      slash + 1 < media.size()) {
    ct.type = util::to_lower(media.substr(0, slash));
    ct.subtype = util::to_lower(media.substr(slash + 1));
  }

  for (std::size_t i = 1; i < parts.size(); ++i) {
    auto param = util::trim(parts[i]);
    auto eq = param.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    std::string key = util::to_lower(util::trim(param.substr(0, eq)));
    std::string_view raw = util::trim(param.substr(eq + 1));
    // Strip optional quotes.
    if (raw.size() >= 2 && raw.front() == '"' && raw.back() == '"') {
      raw = raw.substr(1, raw.size() - 2);
    }
    ct.params[key] = std::string(raw);
  }
  return ct;
}

std::string decode_base64(std::string_view input) {
  static const std::array<int, 256> kReverse = build_base64_reverse();
  std::string out;
  out.reserve(input.size() * 3 / 4);
  unsigned accum = 0;
  int bits = 0;
  for (char c : input) {
    if (c == '=') break;  // padding: remaining bits are discarded
    int v = kReverse[static_cast<unsigned char>(c)];
    if (v < 0) continue;  // skip whitespace / invalid bytes
    accum = (accum << 6) | static_cast<unsigned>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<char>((accum >> bits) & 0xFF));
    }
  }
  return out;
}

std::string encode_base64(std::string_view input) {
  std::string out;
  out.reserve((input.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 2 < input.size()) {
    unsigned v = (static_cast<unsigned char>(input[i]) << 16) |
                 (static_cast<unsigned char>(input[i + 1]) << 8) |
                 static_cast<unsigned char>(input[i + 2]);
    out.push_back(kBase64Alphabet[(v >> 18) & 63]);
    out.push_back(kBase64Alphabet[(v >> 12) & 63]);
    out.push_back(kBase64Alphabet[(v >> 6) & 63]);
    out.push_back(kBase64Alphabet[v & 63]);
    i += 3;
  }
  std::size_t rem = input.size() - i;
  if (rem == 1) {
    unsigned v = static_cast<unsigned char>(input[i]) << 16;
    out.push_back(kBase64Alphabet[(v >> 18) & 63]);
    out.push_back(kBase64Alphabet[(v >> 12) & 63]);
    out.append("==");
  } else if (rem == 2) {
    unsigned v = (static_cast<unsigned char>(input[i]) << 16) |
                 (static_cast<unsigned char>(input[i + 1]) << 8);
    out.push_back(kBase64Alphabet[(v >> 18) & 63]);
    out.push_back(kBase64Alphabet[(v >> 12) & 63]);
    out.push_back(kBase64Alphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::string decode_quoted_printable(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    char c = input[i];
    if (c != '=') {
      out.push_back(c);
      continue;
    }
    // Soft break: "=\n" or "=\r\n" vanish.
    if (i + 1 < input.size() && input[i + 1] == '\n') {
      ++i;
      continue;
    }
    if (i + 2 < input.size() && input[i + 1] == '\r' && input[i + 2] == '\n') {
      i += 2;
      continue;
    }
    if (i + 2 < input.size()) {
      int hi = hex_digit(input[i + 1]);
      int lo = hex_digit(input[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back('=');  // malformed escape: keep literally
  }
  return out;
}

std::string encode_quoted_printable(std::string_view input) {
  constexpr std::size_t kLineLimit = 76;
  constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  std::size_t col = 0;
  auto soft_break = [&] {
    out.append("=\n");
    col = 0;
  };
  for (char c : input) {
    auto uc = static_cast<unsigned char>(c);
    if (c == '\n') {
      out.push_back('\n');
      col = 0;
      continue;
    }
    bool literal = (uc >= 33 && uc <= 126 && c != '=') || c == ' ' || c == '\t';
    std::size_t width = literal ? 1 : 3;
    if (col + width > kLineLimit - 1) soft_break();
    if (literal) {
      out.push_back(c);
    } else {
      out.push_back('=');
      out.push_back(kHex[uc >> 4]);
      out.push_back(kHex[uc & 0xF]);
    }
    col += width;
  }
  return out;
}

std::string decode_transfer_encoding(std::string_view body,
                                     std::string_view encoding) {
  std::string enc = util::to_lower(util::trim(encoding));
  if (enc == "base64") return decode_base64(body);
  if (enc == "quoted-printable") return decode_quoted_printable(body);
  return std::string(body);  // 7bit / 8bit / binary / unknown: identity
}

namespace {

// Splits a multipart body on its boundary into raw sub-part strings.
std::vector<std::string> split_multipart(std::string_view body,
                                         const std::string& boundary) {
  std::vector<std::string> parts;
  const std::string delim = "--" + boundary;
  std::size_t pos = 0;
  std::size_t part_start = std::string::npos;
  while (pos <= body.size()) {
    std::size_t line_end = body.find('\n', pos);
    if (line_end == std::string_view::npos) line_end = body.size();
    std::string_view line = body.substr(pos, line_end - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    bool is_delim = line == delim || line == delim + "--";
    if (is_delim) {
      if (part_start != std::string::npos && pos > part_start) {
        // Strip the trailing newline that belongs to the boundary line.
        std::size_t end = pos;
        if (end > part_start && body[end - 1] == '\n') --end;
        if (end > part_start && body[end - 1] == '\r') --end;
        parts.emplace_back(body.substr(part_start, end - part_start));
      }
      if (line == delim + "--") break;  // closing boundary
      part_start = line_end + 1;
    }
    if (line_end == body.size()) break;
    pos = line_end + 1;
  }
  return parts;
}

void extract_text_rec(const Message& msg, int depth, std::string& out) {
  if (depth < 0) return;
  ContentType ct =
      parse_content_type(msg.header("Content-Type").value_or("text/plain"));
  if (ct.is_multipart()) {
    std::string boundary = ct.boundary();
    if (boundary.empty()) return;
    for (const auto& raw : split_multipart(msg.body(), boundary)) {
      Message part = parse_message(raw);
      extract_text_rec(part, depth - 1, out);
    }
    return;
  }
  if (!ct.is_text()) return;
  std::string decoded = decode_transfer_encoding(
      msg.body(), msg.header("Content-Transfer-Encoding").value_or(""));
  if (!out.empty() && !decoded.empty()) out.push_back('\n');
  out += decoded;
}

}  // namespace

std::string extract_text(const Message& msg, int max_depth) {
  std::string out;
  extract_text_rec(msg, max_depth, out);
  return out;
}

}  // namespace sbx::email
