#include "email/rfc2822.h"

#include <cctype>

#include "util/error.h"
#include "util/strings.h"

namespace sbx::email {
namespace {

// Splits `raw` into lines, treating "\r\n" and "\n" as terminators. The
// terminator is not included in the returned views.
std::vector<std::string_view> split_lines(std::string_view raw) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '\n') {
      std::size_t end = i;
      if (end > start && raw[end - 1] == '\r') --end;
      lines.push_back(raw.substr(start, end - start));
      start = i + 1;
    }
  }
  if (start < raw.size()) lines.push_back(raw.substr(start));
  return lines;
}

bool is_header_name_char(char c) {
  // RFC 2822: printable US-ASCII except colon.
  return c > 32 && c < 127 && c != ':';
}

// Returns the colon position if the line looks like "Name: value".
std::size_t find_header_colon(std::string_view line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == ':') return i == 0 ? std::string_view::npos : i;
    if (!is_header_name_char(line[i])) return std::string_view::npos;
  }
  return std::string_view::npos;
}

}  // namespace

Message parse_message(std::string_view raw, const ParseOptions& opts) {
  auto lines = split_lines(raw);
  Message msg;
  std::size_t body_start_line = lines.size();
  std::string pending_name;
  std::string pending_value;
  bool have_pending = false;

  auto flush_pending = [&] {
    if (have_pending) {
      msg.add_header(std::move(pending_name),
                     std::string(util::trim(pending_value)));
      pending_name.clear();
      pending_value.clear();
      have_pending = false;
    }
  };

  std::size_t i = 0;
  for (; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    if (line.empty()) {  // blank line terminates the header block
      body_start_line = i + 1;
      break;
    }
    if ((line[0] == ' ' || line[0] == '\t') && have_pending) {
      // Folded continuation: unfold with a single space.
      pending_value += ' ';
      pending_value += std::string(util::trim(line));
      continue;
    }
    std::size_t colon = find_header_colon(line);
    if (colon == std::string_view::npos) {
      if (!opts.lenient) {
        throw ParseError("rfc2822: malformed header line: " +
                         std::string(line.substr(0, 60)));
      }
      // Tolerant mode: the "header block" ended early; everything from this
      // line on is body.
      body_start_line = i;
      break;
    }
    flush_pending();
    pending_name = std::string(line.substr(0, colon));
    pending_value = std::string(util::trim(line.substr(colon + 1)));
    have_pending = true;
  }
  if (i == lines.size()) body_start_line = lines.size();
  flush_pending();

  std::string body;
  for (std::size_t j = body_start_line; j < lines.size(); ++j) {
    body.append(lines[j]);
    body.push_back('\n');
  }
  // Preserve the exact absence of a trailing newline.
  if (!body.empty() && !raw.empty() && raw.back() != '\n' &&
      !(raw.size() >= 2 && raw[raw.size() - 2] == '\r')) {
    body.pop_back();
  }
  msg.set_body(std::move(body));
  return msg;
}

namespace {

// Folds one header field to <= 78 character lines at whitespace.
void render_header(std::string& out, const HeaderField& h) {
  constexpr std::size_t kLimit = 78;
  std::string line = h.name + ": " + h.value;
  while (line.size() > kLimit) {
    // Find the last foldable space at or before the limit (but after the
    // header name so we never emit an empty first line).
    std::size_t fold = std::string::npos;
    std::size_t min_pos = h.name.size() + 2;
    for (std::size_t i = std::min(kLimit, line.size() - 1); i > min_pos; --i) {
      if (line[i] == ' ') {
        fold = i;
        break;
      }
    }
    if (fold == std::string::npos) break;  // one long token: leave unfolded
    out.append(line, 0, fold);
    out.append("\n");
    line = "\t" + line.substr(fold + 1);
  }
  out.append(line);
  out.append("\n");
}

}  // namespace

std::string render_message(const Message& msg) {
  std::string out;
  for (const auto& h : msg.headers()) render_header(out, h);
  out.append("\n");
  out.append(msg.body());
  if (!msg.body().empty() && msg.body().back() != '\n') out.push_back('\n');
  return out;
}

}  // namespace sbx::email
