#include "email/builder.h"

namespace sbx::email {

MessageBuilder& MessageBuilder::from(std::string addr) {
  headers_.push_back({"From", std::move(addr)});
  return *this;
}

MessageBuilder& MessageBuilder::to(std::string addr) {
  headers_.push_back({"To", std::move(addr)});
  return *this;
}

MessageBuilder& MessageBuilder::subject(std::string subject) {
  headers_.push_back({"Subject", std::move(subject)});
  return *this;
}

MessageBuilder& MessageBuilder::date(std::string rfc2822_date) {
  headers_.push_back({"Date", std::move(rfc2822_date)});
  return *this;
}

MessageBuilder& MessageBuilder::message_id(std::string id) {
  headers_.push_back({"Message-ID", std::move(id)});
  return *this;
}

MessageBuilder& MessageBuilder::header(std::string name, std::string value) {
  headers_.push_back({std::move(name), std::move(value)});
  return *this;
}

MessageBuilder& MessageBuilder::body(std::string text) {
  body_ = std::move(text);
  return *this;
}

MessageBuilder& MessageBuilder::body_from_words(
    const std::vector<std::string>& words, std::size_t words_per_line) {
  if (words_per_line == 0) words_per_line = 12;
  body_.clear();
  std::size_t total = 0;
  for (const auto& w : words) total += w.size() + 1;
  body_.reserve(total);
  for (std::size_t i = 0; i < words.size(); ++i) {
    body_ += words[i];
    if (i + 1 == words.size() || (i + 1) % words_per_line == 0) {
      body_ += '\n';
    } else {
      body_ += ' ';
    }
  }
  return *this;
}

Message MessageBuilder::build() const { return Message(headers_, body_); }

}  // namespace sbx::email
