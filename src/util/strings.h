// sbx/util/strings.h
//
// Small ASCII string helpers shared by the email parser and tokenizer.
// Locale-independent by design: email headers and token statistics must not
// change behaviour with the process locale.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sbx::util {

/// ASCII-only lower-casing (locale independent).
std::string to_lower(std::string_view s);

/// ASCII-only upper-casing (locale independent).
std::string to_upper(std::string_view s);

/// True if `c` is ASCII whitespace (space, tab, CR, LF, FF, VT).
bool is_space(char c);

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string> split_whitespace(std::string_view s);

/// Joins elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// True if `s` begins with `prefix`, case-insensitively.
bool istarts_with(std::string_view s, std::string_view prefix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

/// Formats a double with fixed precision (printf "%.*f").
std::string format_double(double v, int precision);

/// The one spelling of a registry-lookup failure: "unknown <kind> '<name>'
/// (known: a, b, c)". Shared by the experiment registry, the attack
/// registry and the tokenizer-preset axis so every unknown-name error
/// lists the valid names the same way.
std::string unknown_name_message(std::string_view kind, std::string_view name,
                                 const std::vector<std::string>& known);

}  // namespace sbx::util
