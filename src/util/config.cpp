#include "util/config.h"

#include <charconv>
#include <cmath>

#include "util/error.h"
#include "util/strings.h"

namespace sbx::util {

namespace {

[[noreturn]] void parse_failure(std::string_view what, std::string_view text,
                                std::string_view expected) {
  throw ParseError(std::string(what) + ": invalid value '" +
                   std::string(text) + "' (expected " + std::string(expected) +
                   ")");
}

std::vector<std::string> split_list(std::string_view text) {
  // Comma- or semicolon-separated; a swept list parameter uses ';' so the
  // sweep axis splitter (which owns ',') can carry whole lists as values.
  return util::split(util::replace_all(text, ";", ","), ',');
}

void validate(ParamType type, std::string_view value, std::string_view what) {
  switch (type) {
    case ParamType::kUInt:
      parse_uint(value, what);
      break;
    case ParamType::kDouble:
      parse_double(value, what);
      break;
    case ParamType::kBool:
      parse_bool(value, what);
      break;
    case ParamType::kString:
      break;
    case ParamType::kUIntList:
      for (const auto& item : split_list(value)) parse_uint(item, what);
      break;
    case ParamType::kDoubleList:
      for (const auto& item : split_list(value)) parse_double(item, what);
      break;
  }
}

}  // namespace

std::uint64_t parse_uint(std::string_view text, std::string_view what) {
  std::string_view trimmed = util::trim(text);
  std::uint64_t value = 0;
  const char* first = trimmed.data();
  const char* last = trimmed.data() + trimmed.size();
  auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (trimmed.empty() || ec != std::errc() || ptr != last) {
    parse_failure(what, text, "a non-negative integer");
  }
  return value;
}

double parse_double(std::string_view text, std::string_view what) {
  std::string_view trimmed = util::trim(text);
  double value = 0.0;
  const char* first = trimmed.data();
  const char* last = trimmed.data() + trimmed.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (trimmed.empty() || ec != std::errc() || ptr != last ||
      !std::isfinite(value)) {
    parse_failure(what, text, "a finite number");
  }
  return value;
}

bool parse_bool(std::string_view text, std::string_view what) {
  std::string_view trimmed = util::trim(text);
  for (std::string_view truthy : {"true", "1", "yes", "on"}) {
    if (util::iequals(trimmed, truthy)) return true;
  }
  for (std::string_view falsy : {"false", "0", "no", "off"}) {
    if (util::iequals(trimmed, falsy)) return false;
  }
  parse_failure(what, text, "true/false");
}

std::string_view to_string(ParamType type) {
  switch (type) {
    case ParamType::kUInt: return "uint";
    case ParamType::kDouble: return "double";
    case ParamType::kBool: return "bool";
    case ParamType::kString: return "string";
    case ParamType::kUIntList: return "uint list";
    case ParamType::kDoubleList: return "double list";
  }
  return "?";
}

ConfigSchema& ConfigSchema::add(std::string key, ParamType type,
                                std::string default_value,
                                std::string description) {
  if (find(key) != nullptr) {
    throw InvalidArgument("ConfigSchema::add: duplicate key '" + key + "'");
  }
  validate(type, default_value, "default for '" + key + "'");
  params_.push_back(ParamSpec{std::move(key), type, std::move(default_value),
                              std::move(description)});
  return *this;
}

const ParamSpec* ConfigSchema::find(std::string_view key) const {
  for (const auto& spec : params_) {
    if (spec.key == key) return &spec;
  }
  return nullptr;
}

Config::Config(const ConfigSchema* schema) : schema_(schema) {
  values_.reserve(schema_->params().size());
  for (const auto& spec : schema_->params()) {
    values_.push_back(spec.default_value);
  }
}

void Config::set(std::string_view key, std::string_view value) {
  const auto& params = schema_->params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].key == key) {
      validate(params[i].type, value, "config key '" + params[i].key + "'");
      values_[i] = std::string(value);
      return;
    }
  }
  std::string known;
  for (const auto& spec : params) {
    if (!known.empty()) known += ", ";
    known += spec.key;
  }
  throw InvalidArgument("Config::set: unknown key '" + std::string(key) +
                        "' (known keys: " + known + ")");
}

void Config::set_key_value(std::string_view assignment) {
  std::size_t eq = assignment.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    throw InvalidArgument("Config: override '" + std::string(assignment) +
                          "' is not of the form key=value");
  }
  set(assignment.substr(0, eq), assignment.substr(eq + 1));
}

const std::string& Config::raw(std::string_view key, ParamType expected) const {
  const auto& params = schema_->params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].key == key) {
      if (params[i].type != expected) {
        throw InvalidArgument("Config: key '" + params[i].key + "' is " +
                              std::string(to_string(params[i].type)) +
                              ", requested as " +
                              std::string(to_string(expected)));
      }
      return values_[i];
    }
  }
  throw InvalidArgument("Config: unknown key '" + std::string(key) + "'");
}

const std::string& Config::raw_value(std::string_view key) const {
  const auto& params = schema_->params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].key == key) return values_[i];
  }
  throw InvalidArgument("Config: unknown key '" + std::string(key) + "'");
}

std::vector<std::string> Config::get_list_raw(std::string_view key) const {
  const ParamSpec* spec = schema_->find(key);
  if (spec == nullptr) {
    throw InvalidArgument("Config: unknown key '" + std::string(key) + "'");
  }
  if (spec->type != ParamType::kUIntList &&
      spec->type != ParamType::kDoubleList) {
    throw InvalidArgument("Config: key '" + spec->key + "' is " +
                          std::string(to_string(spec->type)) +
                          ", requested as a list");
  }
  return split_list(raw_value(key));
}

std::uint64_t Config::get_uint(std::string_view key) const {
  return parse_uint(raw(key, ParamType::kUInt), key);
}

double Config::get_double(std::string_view key) const {
  return parse_double(raw(key, ParamType::kDouble), key);
}

bool Config::get_bool(std::string_view key) const {
  return parse_bool(raw(key, ParamType::kBool), key);
}

std::string Config::get_string(std::string_view key) const {
  return raw(key, ParamType::kString);
}

std::vector<std::uint64_t> Config::get_uint_list(std::string_view key) const {
  std::vector<std::uint64_t> out;
  for (const auto& item : split_list(raw(key, ParamType::kUIntList))) {
    out.push_back(parse_uint(item, key));
  }
  return out;
}

std::vector<double> Config::get_double_list(std::string_view key) const {
  std::vector<double> out;
  for (const auto& item : split_list(raw(key, ParamType::kDoubleList))) {
    out.push_back(parse_double(item, key));
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> Config::items() const {
  std::vector<std::pair<std::string, std::string>> out;
  const auto& params = schema_->params();
  out.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    out.emplace_back(params[i].key, values_[i]);
  }
  return out;
}

}  // namespace sbx::util
