#include "util/backoff.h"

#include "util/error.h"

namespace sbx::util {

Deadline Deadline::after_ms(long ms) {
  Deadline d;
  if (ms <= 0) return d;  // unlimited
  d.unlimited_ = false;
  d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  return d;
}

bool Deadline::expired() const {
  return !unlimited_ && std::chrono::steady_clock::now() >= at_;
}

int Deadline::remaining_ms() const {
  // A bounded slice keeps poll() responsive to stop flags even for
  // unlimited deadlines.
  if (unlimited_) return 60'000;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      at_ - std::chrono::steady_clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 60'000) return 60'000;
  return static_cast<int>(left.count());
}

ExponentialBackoff::ExponentialBackoff(int base_ms, int cap_ms,
                                       std::uint64_t seed)
    : base_ms_(base_ms), cap_ms_(cap_ms), rng_(seed) {
  if (base_ms <= 0 || cap_ms < base_ms) {
    throw InvalidArgument("ExponentialBackoff: need 0 < base_ms <= cap_ms");
  }
}

int ExponentialBackoff::next_delay_ms() {
  // min(cap, base * 2^attempt) without overflow: stop doubling at the cap.
  long ceiling = base_ms_;
  for (int i = 0; i < attempts_ && ceiling < cap_ms_; ++i) ceiling *= 2;
  if (ceiling > cap_ms_) ceiling = cap_ms_;
  ++attempts_;
  return static_cast<int>(rng_.uniform_int(1, ceiling));
}

}  // namespace sbx::util
