#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/strings.h"

namespace sbx::util {

std::string render_chart(const std::vector<ChartSeries>& series,
                         const ChartOptions& options) {
  if (series.empty()) throw InvalidArgument("render_chart: no series");
  double x_min = 0, x_max = 0, y_min = 0, y_max = 0;
  bool first = true;
  for (const auto& s : series) {
    if (s.x.size() != s.y.size()) {
      throw InvalidArgument("render_chart: x/y length mismatch in series '" +
                            s.label + "'");
    }
    if (s.x.empty()) {
      throw InvalidArgument("render_chart: empty series '" + s.label + "'");
    }
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (first) {
        x_min = x_max = s.x[i];
        y_min = y_max = s.y[i];
        first = false;
      } else {
        x_min = std::min(x_min, s.x[i]);
        x_max = std::max(x_max, s.x[i]);
        y_min = std::min(y_min, s.y[i]);
        y_max = std::max(y_max, s.y[i]);
      }
    }
  }
  if (options.y_min != options.y_max) {
    y_min = options.y_min;
    y_max = options.y_max;
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  const std::size_t w = std::max<std::size_t>(options.width, 8);
  const std::size_t h = std::max<std::size_t>(options.height, 4);
  std::vector<std::string> grid(h, std::string(w, ' '));

  auto col_of = [&](double x) {
    double t = (x - x_min) / (x_max - x_min);
    auto c = static_cast<long>(std::lround(t * static_cast<double>(w - 1)));
    return static_cast<std::size_t>(std::clamp<long>(c, 0, static_cast<long>(w - 1)));
  };
  auto row_of = [&](double y) {
    double t = (y - y_min) / (y_max - y_min);
    t = std::clamp(t, 0.0, 1.0);
    auto r = static_cast<long>(std::lround((1.0 - t) * static_cast<double>(h - 1)));
    return static_cast<std::size_t>(std::clamp<long>(r, 0, static_cast<long>(h - 1)));
  };

  for (const auto& s : series) {
    // Connect consecutive points with linearly interpolated cells so the
    // curve reads as a line, then stamp the data points on top.
    for (std::size_t i = 0; i + 1 < s.x.size(); ++i) {
      std::size_t c0 = col_of(s.x[i]);
      std::size_t c1 = col_of(s.x[i + 1]);
      if (c1 < c0) std::swap(c0, c1);
      for (std::size_t c = c0; c <= c1; ++c) {
        double span = static_cast<double>(col_of(s.x[i + 1])) -
                      static_cast<double>(col_of(s.x[i]));
        double t = span == 0 ? 0.0
                             : (static_cast<double>(c) -
                                static_cast<double>(col_of(s.x[i]))) /
                                   span;
        double y = s.y[i] + t * (s.y[i + 1] - s.y[i]);
        grid[row_of(y)][c] = '.';
      }
    }
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      grid[row_of(s.y[i])][col_of(s.x[i])] = s.glyph;
    }
  }

  // Assemble with a y-axis (tick labels on 4 rows) and an x-axis line.
  std::string out;
  if (!options.y_label.empty()) {
    out += options.y_label + "\n";
  }
  const int label_width = 8;
  for (std::size_t r = 0; r < h; ++r) {
    bool tick = r == 0 || r == h - 1 || r == h / 2;
    if (tick) {
      double y = y_max - (y_max - y_min) * static_cast<double>(r) /
                             static_cast<double>(h - 1);
      std::string label = format_double(y, 1);
      out += std::string(label_width - std::min<std::size_t>(
                                           label.size(), label_width),
                         ' ') +
             label + " |";
    } else {
      out += std::string(label_width + 1, ' ') + "|";
    }
    out += grid[r];
    out += '\n';
  }
  out += std::string(label_width + 1, ' ') + "+" + std::string(w, '-') + "\n";
  std::string lo = format_double(x_min, 1);
  std::string hi = format_double(x_max, 1);
  out += std::string(label_width + 2, ' ') + lo +
         std::string(w > lo.size() + hi.size()
                         ? w - lo.size() - hi.size()
                         : 1,
                     ' ') +
         hi + "\n";
  if (!options.x_label.empty()) {
    out += std::string(label_width + 2 + (w / 2 > options.x_label.size() / 2
                                              ? w / 2 - options.x_label.size() / 2
                                              : 0),
                       ' ') +
           options.x_label + "\n";
  }
  out += "\n";
  for (const auto& s : series) {
    out += "  ";
    out += s.glyph;
    out += " = " + s.label + "\n";
  }
  return out;
}

}  // namespace sbx::util
