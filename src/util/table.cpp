#include "util/table.h"

#include <filesystem>
#include <fstream>

#include "util/error.h"
#include "util/strings.h"

namespace sbx::util {
namespace {

std::string escape_csv(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  // Built with insert/append rather than operator+ chaining: GCC 12's
  // -Wrestrict misfires on `"lit" + std::string&&` (GCC PR 105329).
  std::string escaped = replace_all(cell, "\"", "\"\"");
  escaped.insert(escaped.begin(), '"');
  escaped.push_back('"');
  return escaped;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw InvalidArgument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw InvalidArgument("Table::add_row: expected " +
                          std::to_string(headers_.size()) + " cells, got " +
                          std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v, int precision) {
  return format_double(v, precision);
}

std::string Table::cell(std::size_t v) { return std::to_string(v); }

std::string Table::cell(int v) { return std::to_string(v); }

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += c == 0 ? "| " : " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += c == 0 ? "|-" : "-|-";
    rule.append(widths[c], '-');
  }
  rule += "-|\n";
  out += rule;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += escape_csv(row[c]);
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void Table::write_csv(const std::string& path) const {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) throw IoError("Table::write_csv: mkdir failed for " + path);
  }
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw IoError("Table::write_csv: cannot open " + path);
  f << to_csv();
  if (!f) throw IoError("Table::write_csv: write failed for " + path);
}

}  // namespace sbx::util
