#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace sbx::util {
namespace {

constexpr double kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;

// Lower incomplete gamma via its power series; converges fast for x < a+1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Upper incomplete gamma via Lentz's continued fraction; for x >= a+1.
double gamma_q_continued_fraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

}  // namespace

double log_gamma(double x) {
  if (x <= 0.0) throw InvalidArgument("log_gamma: x <= 0");
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static const double kCoeffs[] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps accuracy for small x.
    return std::log(3.14159265358979323846 /
                    std::sin(3.14159265358979323846 * x)) -
           log_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoeffs[0];
  double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoeffs[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * 3.14159265358979323846) +
         (x + 0.5) * std::log(t) - t + std::log(a);
}

double regularized_gamma_p(double a, double x) {
  if (a <= 0.0) throw InvalidArgument("regularized_gamma_p: a <= 0");
  if (x < 0.0) throw InvalidArgument("regularized_gamma_p: x < 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  if (a <= 0.0) throw InvalidArgument("regularized_gamma_q: a <= 0");
  if (x < 0.0) throw InvalidArgument("regularized_gamma_q: x < 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double chi_square_cdf(double x, double dof) {
  if (dof <= 0.0) throw InvalidArgument("chi_square_cdf: dof <= 0");
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(dof / 2.0, x / 2.0);
}

double chi_square_sf(double x, double dof) {
  if (dof <= 0.0) throw InvalidArgument("chi_square_sf: dof <= 0");
  if (x <= 0.0) return 1.0;
  return regularized_gamma_q(dof / 2.0, x / 2.0);
}

double log_sum_exp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

namespace {

// Cached std::log(i) values. chi2q_even_dof sits in the classifier's
// per-message hot path (two calls per score, one loop iteration per
// discriminator); caching the integer logs removes a transcendental per
// iteration while producing the exact bits std::log would.
constexpr std::size_t kLogTableSize = 4096;
const double* log_int_table() {
  static const double* table = [] {
    auto* t = new double[kLogTableSize]();
    for (std::size_t i = 1; i < kLogTableSize; ++i) {
      t[i] = std::log(static_cast<double>(i));
    }
    return t;
  }();
  return table;
}

}  // namespace

// Shared Erlang-sum step for chi2q_even_dof and chi2q_even_dof_pair. The
// kNoOpMargin skip is bit-identical to running the fold: when
// log_sum - log_term > 37, exp(log_term - log_sum) < 2^-53, so
// 1.0 + exp(..) rounds to exactly 1.0 under round-to-nearest,
// std::log(1.0) is exactly +0.0 and hi + 0.0 == hi leaves log_sum
// unchanged bit for bit. Once the term sequence is decaying
// (log_m < log_i) every later term only falls further below log_sum, so
// the chain can stop outright (`done`).
namespace {

constexpr double kNoOpMargin = 37.0;

struct Chi2Chain {
  double log_m = 0.0;
  double log_term = 0.0;  // log(m^0 / 0!) = 0
  double log_sum = 0.0;
  bool done = false;

  void step(double log_i) {
    if (done) return;
    log_term += log_m - log_i;
    if (log_sum - log_term > kNoOpMargin) {
      if (log_m < log_i) done = true;  // decaying tail: all no-ops follow
      return;
    }
    // Inlined log_sum_exp(log_sum, log_term), exploiting that the larger
    // argument's exp is exactly exp(0) == 1.0 — bit-identical to the
    // general form (IEEE addition commutes; both operands finite here).
    const double hi = std::max(log_sum, log_term);
    const double lo = std::min(log_sum, log_term);
    log_sum = hi + std::log(1.0 + std::exp(lo - hi));
  }
};

double chi2_finish(const Chi2Chain& chain, double m) {
  const double log_q = chain.log_sum - m;
  if (log_q >= 0.0) return 1.0;
  return std::exp(log_q);
}

}  // namespace

double chi2q_even_dof(double x, std::size_t n) {
  if (x < 0.0) throw InvalidArgument("chi2q_even_dof: x < 0");
  if (n == 0) return 1.0;
  // Q(x; 2n) = exp(-m) * sum_{i=0}^{n-1} m^i / i!,  m = x/2.
  // Accumulate log(sum m^i/i!) with log_sum_exp, then subtract m.
  const double m = x / 2.0;
  if (m == 0.0) return 1.0;
  const double* logs = log_int_table();
  Chi2Chain chain;
  chain.log_m = std::log(m);
  for (std::size_t i = 1; i < n && !chain.done; ++i) {
    chain.step(i < kLogTableSize ? logs[i]
                                 : std::log(static_cast<double>(i)));
  }
  return chi2_finish(chain, m);
}

void chi2q_even_dof_pair(double xa, double xb, std::size_t n, double* qa,
                         double* qb) {
  if (xa < 0.0 || xb < 0.0) {
    throw InvalidArgument("chi2q_even_dof_pair: x < 0");
  }
  if (n == 0) {
    *qa = *qb = 1.0;
    return;
  }
  const double ma = xa / 2.0;
  const double mb = xb / 2.0;
  if (ma == 0.0 || mb == 0.0) {
    *qa = chi2q_even_dof(xa, n);
    *qb = chi2q_even_dof(xb, n);
    return;
  }
  // The two Erlang folds are data-independent; interleaving them lets the
  // CPU overlap the serial log/exp latency chains, which roughly halves
  // the wall clock of evaluating H and S per message. Each chain performs
  // exactly the operations chi2q_even_dof would, so both results are
  // bit-identical to two single calls (stats_test proves it).
  const double* logs = log_int_table();
  Chi2Chain a;
  a.log_m = std::log(ma);
  Chi2Chain b;
  b.log_m = std::log(mb);
  for (std::size_t i = 1; i < n && !(a.done && b.done); ++i) {
    const double log_i =
        i < kLogTableSize ? logs[i] : std::log(static_cast<double>(i));
    a.step(log_i);
    b.step(log_i);
  }
  *qa = chi2_finish(a, ma);
  *qb = chi2_finish(b, mb);
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel variance combination.
  double delta = other.mean_ - mean_;
  std::size_t total = count_ + other.count_;
  double new_mean =
      mean_ + delta * static_cast<double>(other.count_) /
                  static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ = new_mean;
  count_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw InvalidArgument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw InvalidArgument("quantile: q outside [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = q * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= values.size()) return values.back();
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace sbx::util
