// sbx/util/ascii_chart.h
//
// Terminal line charts for the experiment benches: each figure-reproducing
// binary renders its curves the way the paper's plots look, so shape
// comparisons don't require exporting CSVs first.
#pragma once

#include <string>
#include <vector>

namespace sbx::util {

/// One plotted series: (x, y) points plus a glyph and a legend label.
struct ChartSeries {
  std::string label;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;  // same length as x
};

/// Axis/layout configuration.
struct ChartOptions {
  std::size_t width = 60;   // plot-area columns
  std::size_t height = 16;  // plot-area rows
  std::string x_label;
  std::string y_label;
  /// Fixed y range; when min == max the range is derived from the data.
  double y_min = 0.0;
  double y_max = 0.0;
};

/// Renders series onto a grid with y-axis ticks, an x-axis tick line and a
/// legend. Points are plotted at the nearest cell; later series overwrite
/// earlier ones where they collide. Throws InvalidArgument on empty or
/// mismatched input.
std::string render_chart(const std::vector<ChartSeries>& series,
                         const ChartOptions& options = {});

}  // namespace sbx::util
