// sbx/util/crc32.h
//
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// framing the serving layer's write-ahead log records. A torn or
// bit-flipped tail record must be *detected* and dropped during recovery,
// never half-applied; CRC-32 over the record body is what draws that line.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sbx::util {

/// CRC-32 of `len` bytes starting at `data`, seeded with `seed` (pass the
/// previous return value to checksum data in chunks). The default seed is
/// the standard initial value; the returned value is the final (already
/// xor-ed out) checksum.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace sbx::util
