// sbx/util/thread_annotations.h
//
// Clang Thread Safety Analysis macros plus the annotated, RANKED mutex
// primitives the analysis needs to be useful. The project's two
// concurrency invariants — "mutations under the shard lock, reads
// lock-free on immutable snapshots" (serve) and "determinism never
// depends on lock acquisition order" (eval) — were previously enforced
// by prose comments; these annotations make the locking half
// compiler-checked on every clang build (`-Wthread-safety -Werror`, the
// CI static-analysis job). Under GCC every macro expands to nothing and
// `util::Mutex`/`MutexLock` degrade to thin std::mutex wrappers, so
// local GCC builds are unaffected.
//
// Lock ORDER (which TSA cannot see) is enforced separately: every Mutex
// declares its util::LockRank + name at construction, and under the
// SBX_LOCK_RANK build toggle (Debug / sanitizer builds) a per-thread
// held-locks tracker aborts on rank inversions, re-entrant acquisition,
// and CondVar waits entered with other locks held — see
// src/util/lock_rank.h for the hierarchy and tools/sbx_lockgraph.py for
// the cross-TU static check of the same invariant. In Release builds the
// tracker compiles out entirely (no members, no calls — the wrapper is
// bit-for-bit the PR 8 std::mutex shim).
//
// Usage pattern:
//
//   class Account {
//    public:
//     void deposit(int n) SBX_EXCLUDES(mutex_) {
//       util::MutexLock lock(mutex_);
//       balance_ += n;
//     }
//    private:
//     // Only called with mutex_ held — the compiler now proves it.
//     void audit() SBX_REQUIRES(mutex_);
//     util::Mutex mutex_{util::LockRank::kLeaf, "Account::mutex_"};
//     int balance_ SBX_GUARDED_BY(mutex_) = 0;
//   };
//
// Why a wrapper instead of std::mutex + std::scoped_lock: the analysis
// only tracks capabilities through attributed functions. std::mutex's
// members carry no attributes in libstdc++, and std::scoped_lock /
// std::lock_guard are not SCOPED_CAPABILITY types, so locking through
// them is invisible to the analysis — every guarded access would warn
// despite being correctly serialized. util::Mutex attributes
// lock()/unlock(), and util::MutexLock is the RAII guard the analysis
// understands.
//
// Reading a -Wthread-safety failure: see README "Static analysis &
// sanitizers".
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/lock_rank.h"

// Attribute plumbing: real clang attributes under clang, nothing under
// GCC (GCC has no thread safety analysis; the attribute spellings below
// would be unknown-attribute warnings there).
#if defined(__clang__)
#define SBX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SBX_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" names the capability
/// kind in diagnostics).
#define SBX_CAPABILITY(x) SBX_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability.
#define SBX_SCOPED_CAPABILITY SBX_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be read or written while holding `x`.
#define SBX_GUARDED_BY(x) SBX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointee (not the pointer) is protected by `x`.
#define SBX_PT_GUARDED_BY(x) SBX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called while holding the listed capabilities —
/// the compiler-checked spelling of "caller holds the lock".
#define SBX_REQUIRES(...) \
  SBX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on return.
#define SBX_ACQUIRE(...) \
  SBX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (which must be held).
#define SBX_RELEASE(...) \
  SBX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define SBX_TRY_ACQUIRE(b, ...) \
  SBX_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (non-reentrancy /
/// deadlock documentation the compiler enforces).
#define SBX_EXCLUDES(...) SBX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define SBX_RETURN_CAPABILITY(x) SBX_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the analysis cannot see the invariant.
#define SBX_NO_THREAD_SAFETY_ANALYSIS \
  SBX_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sbx::util {

/// std::mutex with thread-safety-analysis attributes and a mandatory
/// place in the global lock hierarchy: construction names the rank and
/// the lock (e.g. `Mutex m{LockRank::kShard, "ModelShard::mutation_-
/// mutex_"}`). In Release builds both arguments are discarded and the
/// wrapper costs exactly a std::mutex; under SBX_LOCK_RANK every
/// acquisition is checked against the held stack (see lock_rank.h).
class SBX_CAPABILITY("mutex") Mutex {
 public:
#ifdef SBX_LOCK_RANK
  explicit Mutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}
#else
  explicit Mutex(LockRank, const char*) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SBX_ACQUIRE() {
#ifdef SBX_LOCK_RANK
    lock_rank_detail::note_acquire(this, rank_, name_);
#endif
    mutex_.lock();
  }
  void unlock() SBX_RELEASE() {
#ifdef SBX_LOCK_RANK
    // Check first: unlocking a std::mutex this thread does not hold is
    // UB, so the tracker must abort before touching it.
    lock_rank_detail::note_release(this);
#endif
    mutex_.unlock();
  }
  // try_lock obeys the same ordering bar as lock(): an inverted
  // try_lock cannot deadlock by itself, but it would make the declared
  // hierarchy a lie (and the static extractor's graph wrong).
  bool try_lock() SBX_TRY_ACQUIRE(true) {
#ifdef SBX_LOCK_RANK
    lock_rank_detail::note_acquire(this, rank_, name_);
    const bool ok = mutex_.try_lock();
    if (!ok) lock_rank_detail::note_release(this);
    return ok;
#else
    return mutex_.try_lock();
#endif
  }

  /// The wrapped std::mutex, for std::condition_variable interop only
  /// (CondVar below). Locking through this bypasses the analysis.
  std::mutex& native() { return mutex_; }

#ifdef SBX_LOCK_RANK
  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }
#endif

 private:
  std::mutex mutex_;
#ifdef SBX_LOCK_RANK
  const LockRank rank_;
  const char* const name_;
#endif
};

/// RAII lock over util::Mutex that the analysis understands (the
/// SCOPED_CAPABILITY counterpart of std::unique_lock).
class SBX_SCOPED_CAPABILITY MutexLock {
 public:
#ifdef SBX_LOCK_RANK
  explicit MutexLock(Mutex& mutex) SBX_ACQUIRE(mutex)
      : mutex_(&mutex), lock_(mutex.native(), std::defer_lock) {
    // Check-then-block: the tracker aborts on an inverted acquisition
    // BEFORE this thread can deadlock on the underlying mutex.
    lock_rank_detail::note_acquire(mutex_, mutex.rank(), mutex.name());
    lock_.lock();
  }
  ~MutexLock() SBX_RELEASE() {
    lock_.unlock();
    lock_rank_detail::note_release(mutex_);
  }
#else
  explicit MutexLock(Mutex& mutex) SBX_ACQUIRE(mutex)
      : lock_(mutex.native()) {}
  ~MutexLock() SBX_RELEASE() = default;
#endif

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying unique_lock, for CondVar::wait only.
  std::unique_lock<std::mutex>& native() { return lock_; }

#ifdef SBX_LOCK_RANK
  /// The tracked Mutex (CondVar's wait-entry check needs its identity).
  const Mutex* tracked() const { return mutex_; }
#endif

 private:
#ifdef SBX_LOCK_RANK
  const Mutex* mutex_;
#endif
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with util::Mutex. wait() atomically releases
/// and reacquires the lock exactly like std::condition_variable; the
/// analysis treats the whole wait as lock-held, which is sound for
/// callers because wait() always returns with the lock reacquired. Prefer
/// explicit `while (!predicate()) cv.wait(lock);` loops over predicate
/// lambdas: the analysis does not propagate capabilities into lambda
/// bodies, so guarded reads inside a predicate lambda would warn.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) {
#ifdef SBX_LOCK_RANK
    // Waiting releases only `lock`'s mutex; any other lock this thread
    // holds stays held for the whole block and can deadlock the
    // notifier — the tracker aborts here instead (see lock_rank.h).
    lock_rank_detail::note_cond_wait(lock.tracked());
#endif
    cv_.wait(lock.native());
  }
  /// Timed wait (steady clock): returns false on timeout, true when
  /// notified. Same predicate-loop guidance as wait().
  bool wait_for_ms(MutexLock& lock, long ms) {
#ifdef SBX_LOCK_RANK
    lock_rank_detail::note_cond_wait(lock.tracked());
#endif
    return cv_.wait_for(lock.native(), std::chrono::milliseconds(ms)) ==
           std::cv_status::no_timeout;
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sbx::util
