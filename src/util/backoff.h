// sbx/util/backoff.h
//
// Monotonic-clock deadlines and deterministic exponential backoff — the
// timing primitives behind the serving layer's failure handling. A
// Deadline carries "this operation must finish by T" through a chain of
// partial reads/writes (steady_clock, so wall-clock jumps never fire a
// timeout early or late); ExponentialBackoff paces reconnect/retry
// attempts with full jitter drawn from a seeded util::Rng, so a retry
// schedule is reproducible under a fixed seed (loadgen determinism) while
// still decorrelating real fleets.
#pragma once

#include <chrono>
#include <cstdint>

#include "util/random.h"

namespace sbx::util {

/// A point in monotonic time an operation must not run past. Deadlines are
/// cheap values: derive one per operation, pass it down through every
/// blocking step, and each step budgets `remaining_ms()` for its poll.
class Deadline {
 public:
  /// A deadline `ms` milliseconds from now; ms <= 0 means unlimited.
  static Deadline after_ms(long ms);
  static Deadline unlimited() { return Deadline(); }

  bool is_unlimited() const { return unlimited_; }
  bool expired() const;

  /// Milliseconds left, clamped to >= 0. Unlimited deadlines report a
  /// large constant suitable for poll(2) slices.
  int remaining_ms() const;

 private:
  Deadline() = default;

  bool unlimited_ = true;
  std::chrono::steady_clock::time_point at_{};
};

/// Exponential backoff with full jitter: attempt k (0-based) sleeps a
/// uniform draw from [1, min(cap, base * 2^k)] milliseconds. Deterministic
/// in the seed.
class ExponentialBackoff {
 public:
  /// Throws InvalidArgument unless 0 < base_ms <= cap_ms.
  ExponentialBackoff(int base_ms, int cap_ms, std::uint64_t seed);

  /// The next delay in milliseconds; advances the attempt counter.
  int next_delay_ms();

  int attempts() const { return attempts_; }
  void reset() { attempts_ = 0; }

 private:
  int base_ms_;
  int cap_ms_;
  int attempts_ = 0;
  Rng rng_;
};

}  // namespace sbx::util
