// sbx/util/lock_rank.h
//
// The declared lock hierarchy, and the debug-build tracker that enforces
// it at runtime. PR 8's thread-safety annotations prove WHO guards WHAT;
// they are ordering-blind — a shard → WAL → replicator acquisition cycle
// compiles clean under -Wthread-safety and only surfaces as a production
// hang. This header makes the acquisition ORDER itself a declared,
// machine-checked invariant (the lock-ranking discipline of large
// concurrent systems; the runtime half is a per-thread lockdep):
//
//  * every util::Mutex names its LockRank (and itself) at construction —
//    there is no unranked mutex;
//  * a thread may only acquire a mutex of STRICTLY GREATER rank than
//    every mutex it already holds (equal rank counts as a violation:
//    two locks of one rank held together is an undeclared ordering);
//  * under SBX_LOCK_RANK (Debug / sanitizer builds; compiled out of
//    Release) each thread keeps a held-locks stack and abort()s — with
//    both lock names and the held stack — on any rank inversion, on
//    re-entrant acquisition (std::mutex re-lock is UB, not a deadlock
//    you can observe), and on a CondVar wait entered while OTHER locks
//    are held (the wait releases only its own mutex; anything below it
//    on the stack stays held across the block and can deadlock the
//    notifier);
//  * tools/sbx_lockgraph.py checks the same hierarchy statically across
//    translation units and emits the acquisition graph as DOT.
//
// The hierarchy (a lower value is an OUTER lock — acquired first):
//
//   rank         mutex                              outer of
//   ----------   --------------------------------   ------------------
//   kThreadPool  ThreadPool::mutex_,                nothing — pool
//                SharedPoolState::mutex             internals never
//                                                   call out while held
//   kServer      Server::threads_mutex_             (leaf in practice)
//   kShard       ModelShard::mutation_mutex_        commit, chain, WAL,
//                                                   replicator
//   kCommit      Durability::commit_mutex_          WAL (group-commit
//                                                   leader fsync pass)
//   kChain       Durability::chain_mutex_           (leaf: snapshot file
//                                                   writes only)
//   kWal         WalWriter::io_mutex_               (leaf: fd ops only)
//   kReplicator  Replicator::mutex_                 (leaf: queue ops
//                                                   only; the shipper's
//                                                   socket I/O runs
//                                                   unlocked)
//   kLeaf        TokenInterner::write_mutex_        nothing, ever
//
// Why kThreadPool is the LOWEST rank even though pool internals are
// leaf-like: pool workers execute arbitrary tasks, so a task must never
// reach pool internals while holding an sbx lock — ranking the pool
// below everything turns "submit()/wait() while holding a shard lock"
// into an immediate abort instead of a starvation hang.
//
// Reading a rank-violation abort: see README "Static analysis &
// sanitizers".
#pragma once

namespace sbx::util {

/// Global lock ordering. Gaps are deliberate — a future lock slots in
/// without renumbering (tools/sbx_lockgraph.py parses these values, so
/// keep the `kName = value,` spelling).
enum class LockRank : int {
  kThreadPool = 10,
  kServer = 20,
  kShard = 30,
  kCommit = 40,
  kChain = 50,
  kWal = 60,
  kReplicator = 70,
  kLeaf = 90,
};

/// The enumerator's spelling ("kShard"), for diagnostics.
const char* lock_rank_name(LockRank rank);

#ifdef SBX_LOCK_RANK

/// Runtime tracker internals, called from util::Mutex / util::CondVar
/// (src/util/thread_annotations.h) only. Each function either returns
/// normally or prints the violation + this thread's held stack to stderr
/// and abort()s — the failure mode is a crash at the acquisition site,
/// not a hang at the deadlock site.
namespace lock_rank_detail {

/// Records `mutex` as held by this thread after checking rank order and
/// re-entrancy. Call BEFORE blocking on the underlying lock, so the
/// abort fires even when the inverted acquisition would deadlock.
void note_acquire(const void* mutex, LockRank rank, const char* name);

/// Pops `mutex` from this thread's held stack (any position: manual
/// lock()/unlock() pairs need not be LIFO, RAII guards always are).
void note_release(const void* mutex);

/// Checks a CondVar wait about to run on `mutex`: aborts when this
/// thread holds any OTHER lock (necessarily of lower rank — acquisition
/// order guarantees it) across the wait.
void note_cond_wait(const void* mutex);

/// Number of locks this thread currently holds (test introspection).
int held_count();

}  // namespace lock_rank_detail

#endif  // SBX_LOCK_RANK

}  // namespace sbx::util
