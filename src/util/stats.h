// sbx/util/stats.h
//
// Statistical primitives for the SpamBayes classifier and the evaluation
// harness. The centerpiece is the chi-square survival function with even
// degrees of freedom, which is what Fisher's method (Eq. 4 of the paper)
// needs: with 2n dof the chi-square CDF reduces to an Erlang sum
//   Q(x; 2n) = exp(-x/2) * sum_{i=0}^{n-1} (x/2)^i / i!
// which we evaluate in log space so that extremely spammy/hammy messages
// (|delta(E)| up to 150 tokens) never overflow or underflow to nonsense.
//
// A general regularized incomplete gamma implementation (series +
// continued fraction, Numerical-Recipes style) is provided as an
// independent cross-check; unit tests compare the two across wide ranges.
#pragma once

#include <cstddef>
#include <vector>

namespace sbx::util {

/// Natural log of the Gamma function (Lanczos approximation).
/// Accurate to ~1e-13 relative error for x > 0.
double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a).
/// Requires a > 0, x >= 0.
double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/// Chi-square CDF with `dof` degrees of freedom evaluated at x >= 0.
double chi_square_cdf(double x, double dof);

/// Chi-square survival function (1 - CDF) with `dof` degrees of freedom.
double chi_square_sf(double x, double dof);

/// Survival function of the chi-square distribution with 2n degrees of
/// freedom evaluated at x >= 0, computed via the log-space Erlang sum.
/// This is the exact quantity SpamBayes' chi2Q computes; `n` is the number
/// of combined significance tests (tokens). Returns a value in [0, 1].
double chi2q_even_dof(double x, std::size_t n);

/// Evaluates chi2q_even_dof(xa, n) and chi2q_even_dof(xb, n) in one
/// interleaved pass. Both results are BIT-identical to two single calls —
/// each fold performs the exact same operation sequence — but the two
/// data-independent log/exp chains overlap in the pipeline, roughly
/// halving the cost of the classifier's per-message H/S evaluation.
void chi2q_even_dof_pair(double xa, double xb, std::size_t n, double* qa,
                         double* qb);

/// log(exp(a) + exp(b)) without overflow.
double log_sum_exp(double a, double b);

/// Streaming mean/variance accumulator (Welford). Numerically stable and
/// mergeable, used to aggregate per-fold experiment statistics.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation
/// between order statistics. The input is copied and sorted.
double quantile(std::vector<double> values, double q);

}  // namespace sbx::util
