// sbx/util/random.h
//
// Deterministic, seedable random number generation for every stochastic
// component in sbx. All experiments in the paper reproduction are driven by
// explicit seeds so that any figure can be regenerated bit-for-bit.
//
// Design notes:
//  * Pcg32 is a small, fast, statistically strong generator (O'Neill, PCG
//    family, XSH-RR variant). We implement it ourselves rather than relying
//    on std::mt19937 so that streams are cheap to fork: every email, fold and
//    repetition gets an independent child stream derived from a master seed,
//    which keeps experiments order-independent and parallelizable.
//  * SplitMix64 is used to expand user-provided seeds into well-mixed state.
#pragma once

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "util/error.h"

namespace sbx::util {

/// SplitMix64 step: returns the next value of the sequence and advances
/// `state`. Used for seed expansion; passes BigCrush as a generator.
std::uint64_t splitmix64(std::uint64_t& state);

/// Minimal PCG32 (XSH-RR 64/32) engine. Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Seeds the generator. `seed` selects the starting state, `stream`
  /// selects one of 2^63 distinct sequences.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 32 random bits.
  result_type operator()();

  /// Advances the engine `n` steps in O(log n) (PCG jump-ahead).
  void advance(std::uint64_t n);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Convenience wrapper bundling a Pcg32 with the sampling operations the
/// corpus generator, attacks and evaluation harness need. Forkable: child
/// streams are independent of the parent and of each other.
class Rng {
 public:
  /// Creates a generator from a master seed.
  explicit Rng(std::uint64_t seed = 1);

  /// Derives an independent child generator. Children created with distinct
  /// `key`s (or successive calls) do not overlap with the parent stream.
  Rng fork(std::uint64_t key);

  /// Uniform 32 random bits (UniformRandomBitGenerator interface).
  using result_type = Pcg32::result_type;
  static constexpr result_type min() { return Pcg32::min(); }
  static constexpr result_type max() { return Pcg32::max(); }
  result_type operator()() { return engine_(); }

  /// Uniform integer in [lo, hi] (inclusive). Throws InvalidArgument if
  /// lo > hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform size_t in [0, n). Throws InvalidArgument if n == 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal draw parameterized by the underlying normal's mu/sigma.
  double log_normal(double mu, double sigma);

  /// Poisson draw with the given mean.
  int poisson(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  /// Order of the result is random. Throws InvalidArgument if k > n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Picks one element uniformly from a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& v) {
    if (v.empty()) throw InvalidArgument("Rng::choice: empty vector");
    return v[index(v.size())];
  }

 private:
  explicit Rng(Pcg32 engine) : engine_(engine) {}

  Pcg32 engine_;
  std::uint64_t fork_counter_ = 0;
  std::uint64_t seed_ = 0;
};

/// O(1) sampling from an arbitrary discrete distribution via the
/// Walker/Vose alias method. Build is O(n).
class AliasSampler {
 public:
  /// Builds the table from non-negative weights (need not be normalized).
  /// Throws InvalidArgument on an empty or all-zero weight vector.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws one index distributed proportionally to the build weights.
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Zipf-Mandelbrot sampler over ranks 0..n-1:
///   P(rank = k) proportional to 1 / (k + 1 + q)^s.
/// Backed by an AliasSampler, so draws are O(1). This is the workhorse
/// behind the synthetic ham/spam token distributions: natural-language word
/// frequencies are famously Zipfian, which is the property the paper's
/// dictionary attack exploits (rare tokens are easily poisoned).
class ZipfSampler {
 public:
  /// `n` ranks, exponent `s` > 0, flattening offset `q` >= 0.
  ZipfSampler(std::size_t n, double s, double q = 2.7);

  std::size_t sample(Rng& rng) const { return alias_.sample(rng); }
  std::size_t size() const { return alias_.size(); }

  /// The probability assigned to rank k (for tests / analysis).
  double probability(std::size_t k) const;

 private:
  std::vector<double> pmf_;
  AliasSampler alias_;
};

}  // namespace sbx::util
