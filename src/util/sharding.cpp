#include "util/sharding.h"

#include <future>
#include <vector>

#include "util/error.h"
#include "util/thread_pool.h"

namespace sbx::util {

std::size_t shard_of(std::uint64_t key, std::size_t shard_count) {
  if (shard_count == 0) {
    throw InvalidArgument("shard_of: shard_count must be greater than 0");
  }
  return static_cast<std::size_t>(mix64(key) % shard_count);
}

void parallel_over_shards(std::size_t shard_count,
                          const std::function<void(std::size_t)>& body) {
  if (shard_count == 0) return;
  if (shard_count == 1) {
    body(0);
    return;
  }
  ThreadPool& pool = ThreadPool::shared();
  std::vector<std::future<void>> futures;
  futures.reserve(shard_count);
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    futures.push_back(pool.submit([&body, shard] { body(shard); }));
  }
  pool.wait(futures);
}

}  // namespace sbx::util
