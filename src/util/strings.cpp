#include "util/strings.h"

#include <cstdio>

#include "util/error.h"

namespace sbx::util {
namespace {

char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

char ascii_upper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

}  // namespace

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(ascii_lower(c));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(ascii_upper(c));
  return out;
}

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

bool istarts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) throw InvalidArgument("replace_all: empty pattern");
  std::string out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string unknown_name_message(std::string_view kind, std::string_view name,
                                 const std::vector<std::string>& known) {
  std::string message = "unknown ";
  message += kind;
  message += " '";
  message += name;
  message += "' (known: ";
  message += join(known, ", ");
  message += ")";
  return message;
}

}  // namespace sbx::util
