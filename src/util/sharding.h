// sbx/util/sharding.h
//
// Key-to-shard routing and shard-parallel dispatch for the serving layer.
// A shard owns a disjoint subset of users; requests are routed by a mixed
// hash of the user id (user ids are often sequential, so the raw value
// would pile consecutive users onto consecutive shards and make one shard
// the mutation hot spot under loadgen-style workloads).
//
// parallel_over_shards() runs one body per shard on the process-wide
// shared ThreadPool — the same pool the experiment Runner borrows — so a
// frontend fanning a multi-user batch across shards composes with any
// in-flight experiment parallelism instead of oversubscribing the machine.
// The pool's run-inline-while-waiting policy makes the nesting (a pool
// task that itself dispatches over shards) deadlock-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace sbx::util {

/// SplitMix64 finalizer: a cheap, statistically strong 64-bit mixer.
/// Consecutive inputs map to uncorrelated outputs, which is exactly the
/// property shard routing needs for sequential user ids.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The shard in [0, shard_count) that owns `key`. Deterministic across
/// processes (pure function of the key), so a client and a server that
/// agree on shard_count agree on placement. Throws InvalidArgument when
/// shard_count is 0.
std::size_t shard_of(std::uint64_t key, std::size_t shard_count);

/// Runs body(shard) for every shard in [0, shard_count) on the shared
/// ThreadPool and waits for all of them; rethrows the first body
/// exception. Bodies run concurrently — each must touch only its own
/// shard's state.
void parallel_over_shards(std::size_t shard_count,
                          const std::function<void(std::size_t)>& body);

}  // namespace sbx::util
