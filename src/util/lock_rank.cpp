#include "util/lock_rank.h"

#ifdef SBX_LOCK_RANK
#include <cstdio>
#include <cstdlib>
#endif

namespace sbx::util {

const char* lock_rank_name(LockRank rank) {
  switch (rank) {
    case LockRank::kThreadPool:
      return "kThreadPool";
    case LockRank::kServer:
      return "kServer";
    case LockRank::kShard:
      return "kShard";
    case LockRank::kCommit:
      return "kCommit";
    case LockRank::kChain:
      return "kChain";
    case LockRank::kWal:
      return "kWal";
    case LockRank::kReplicator:
      return "kReplicator";
    case LockRank::kLeaf:
      return "kLeaf";
  }
  return "<unknown rank>";
}

#ifdef SBX_LOCK_RANK

namespace lock_rank_detail {
namespace {

struct HeldLock {
  const void* mutex = nullptr;
  LockRank rank = LockRank::kLeaf;
  const char* name = nullptr;
};

// Deep enough for any real acquisition chain (the hierarchy has 8 levels;
// the deepest real path is 2). Overflow is itself reported as a violation
// rather than silently truncating the stack.
constexpr int kMaxHeld = 32;

thread_local HeldLock tls_held[kMaxHeld];
thread_local int tls_depth = 0;

/// Prints the violation + the held stack and aborts. The output is a
/// single stderr burst so death tests (and humans reading a CI log) see
/// one coherent block even when other threads are printing.
[[noreturn]] void die(const char* what, const void* mutex, LockRank rank,
                      const char* name) {
  std::fprintf(stderr,
               "sbx lock-rank violation: %s\n"
               "  lock: \"%s\" (rank %s=%d, %p)\n"
               "  held by this thread (outermost first):\n",
               what, name != nullptr ? name : "<unnamed>",
               lock_rank_name(rank), static_cast<int>(rank), mutex);
  if (tls_depth == 0) {
    std::fprintf(stderr, "    (nothing)\n");
  }
  for (int i = 0; i < tls_depth; ++i) {
    std::fprintf(stderr, "    %d. \"%s\" (rank %s=%d, %p)\n", i + 1,
                 tls_held[i].name != nullptr ? tls_held[i].name : "<unnamed>",
                 lock_rank_name(tls_held[i].rank),
                 static_cast<int>(tls_held[i].rank), tls_held[i].mutex);
  }
  std::fprintf(stderr,
               "  the declared hierarchy lives in src/util/lock_rank.h; "
               "see README \"Static analysis & sanitizers\" for how to "
               "read this abort\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void note_acquire(const void* mutex, LockRank rank, const char* name) {
  for (int i = 0; i < tls_depth; ++i) {
    if (tls_held[i].mutex == mutex) {
      die("re-entrant acquisition (this thread already holds the lock; "
          "re-locking a std::mutex is undefined behavior)",
          mutex, rank, name);
    }
  }
  // Acquisition order invariant: ranks on the stack are strictly
  // increasing, so the innermost held lock carries the maximum rank.
  if (tls_depth > 0 && tls_held[tls_depth - 1].rank >= rank) {
    die("rank inversion (acquiring a lock whose rank is not strictly "
        "greater than every lock already held)",
        mutex, rank, name);
  }
  if (tls_depth >= kMaxHeld) {
    die("held-locks stack overflow (more nested locks than the tracker "
        "supports — almost certainly a bug)",
        mutex, rank, name);
  }
  tls_held[tls_depth++] = HeldLock{mutex, rank, name};
}

void note_release(const void* mutex) {
  for (int i = tls_depth - 1; i >= 0; --i) {
    if (tls_held[i].mutex != mutex) continue;
    for (int j = i; j + 1 < tls_depth; ++j) tls_held[j] = tls_held[j + 1];
    --tls_depth;
    return;
  }
  die("release of a lock this thread does not hold", mutex, LockRank::kLeaf,
      "<released>");
}

void note_cond_wait(const void* mutex) {
  for (int i = 0; i < tls_depth; ++i) {
    if (tls_held[i].mutex == mutex) continue;
    // Everything else on the stack is lower-ranked than the waited
    // mutex (acquisition order), stays held across the block, and can
    // starve the thread that would notify this wait.
    die("CondVar wait while holding another (lower-rank) lock — the wait "
        "releases only its own mutex; every other held lock blocks the "
        "notifier for the duration",
        tls_held[i].mutex, tls_held[i].rank, tls_held[i].name);
  }
}

int held_count() { return tls_depth; }

}  // namespace lock_rank_detail

#endif  // SBX_LOCK_RANK

}  // namespace sbx::util
