// sbx/util/error.h
//
// Library-wide exception type. All sbx components throw sbx::Error (or a
// subclass) for runtime failures so callers can catch one type at the API
// boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace sbx {

/// Base exception for all sbx runtime failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when parsing external input (email, mbox, CLI flags) fails.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when a function is called with arguments outside its contract.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on file-system level failures (open/read/write).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

}  // namespace sbx
