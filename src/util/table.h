// sbx/util/table.h
//
// Result-table formatting for the experiment harness. Every bench binary
// reports the paper's rows/series through a Table: aligned plain text on
// stdout (what a reader compares against the paper) and optional CSV export
// (what a plotting script consumes).
#pragma once

#include <string>
#include <vector>

namespace sbx::util {

/// A simple column-oriented table: set headers once, append rows of cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string cell(double v, int precision = 2);
  static std::string cell(std::size_t v);
  static std::string cell(int v);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders an aligned, pipe-separated plain-text table.
  std::string to_text() const;

  /// Renders RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted).
  std::string to_csv() const;

  /// Writes CSV to a file, creating parent directories as needed.
  /// Throws IoError on failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sbx::util
