#include "util/random.h"

#include <cmath>

namespace sbx::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) {
  // The increment must be odd; fold the stream selector accordingly.
  inc_ = (stream << 1u) | 1u;
  state_ = 0;
  (void)(*this)();
  state_ += seed;
  (void)(*this)();
}

Pcg32::result_type Pcg32::operator()() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

void Pcg32::advance(std::uint64_t n) {
  // Brown, "Random Number Generation with Arbitrary Strides": compute
  // (mult^n) and the matching increment in O(log n).
  std::uint64_t cur_mult = 6364136223846793005ULL;
  std::uint64_t cur_plus = inc_;
  std::uint64_t acc_mult = 1;
  std::uint64_t acc_plus = 0;
  while (n > 0) {
    if (n & 1u) {
      acc_mult *= cur_mult;
      acc_plus = acc_plus * cur_mult + cur_plus;
    }
    cur_plus = (cur_mult + 1) * cur_plus;
    cur_mult *= cur_mult;
    n >>= 1u;
  }
  state_ = acc_mult * state_ + acc_plus;
}

Rng::Rng(std::uint64_t seed) : engine_(0, 0), seed_(seed) {
  std::uint64_t sm = seed;
  std::uint64_t s0 = splitmix64(sm);
  std::uint64_t s1 = splitmix64(sm);
  engine_ = Pcg32(s0, s1);
}

Rng Rng::fork(std::uint64_t key) {
  // Mix (seed, key, counter) through SplitMix64 to derive a fresh stream.
  std::uint64_t sm = seed_ ^ (0x9e3779b97f4a7c15ULL * (key + 1));
  sm ^= splitmix64(sm) + (++fork_counter_) * 0xd1b54a32d192ed03ULL;
  std::uint64_t s0 = splitmix64(sm);
  std::uint64_t s1 = splitmix64(sm);
  Rng child{Pcg32(s0, s1)};
  child.seed_ = s0 ^ s1;
  return child;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw InvalidArgument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    std::uint64_t v = (static_cast<std::uint64_t>(engine_()) << 32) | engine_();
    return static_cast<std::int64_t>(v);
  }
  // Lemire-style rejection sampling for an unbiased bounded draw.
  std::uint64_t x, r;
  do {
    x = (static_cast<std::uint64_t>(engine_()) << 32) | engine_();
    r = x % span;
  } while (x - r > (~span + 1));
  return lo + static_cast<std::int64_t>(r);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw InvalidArgument("Rng::index: n == 0");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  std::uint64_t hi = engine_();
  std::uint64_t lo = engine_();
  std::uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; one draw per call keeps the stream position deterministic.
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  double z = std::sqrt(-2.0 * std::log(u1)) *
             std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

double Rng::log_normal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

int Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    double limit = std::exp(-mean);
    double prod = uniform();
    int n = 0;
    while (prod > limit) {
      ++n;
      prod *= uniform();
    }
    return n;
  }
  // Normal approximation for large means; adequate for email lengths.
  double draw = normal(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<int>(draw + 0.5);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw InvalidArgument("Rng::sample_without_replacement: k > n");
  }
  // Partial Fisher-Yates over an index vector: O(n) memory, O(n + k) time.
  // For the sizes used in the experiments (n <= ~100k) this is fine.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw InvalidArgument("AliasSampler: empty weights");
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw InvalidArgument("AliasSampler: negative weight");
    total += w;
  }
  if (total <= 0) throw InvalidArgument("AliasSampler: all weights zero");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    std::uint32_t s = small.back();
    small.pop_back();
    std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers: everything remaining has probability ~1.
  for (std::uint32_t s : small) prob_[s] = 1.0;
  for (std::uint32_t l : large) prob_[l] = 1.0;
}

std::size_t AliasSampler::sample(Rng& rng) const {
  std::size_t column = rng.index(prob_.size());
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

ZipfSampler::ZipfSampler(std::size_t n, double s, double q)
    : pmf_([n, s, q] {
        if (n == 0) throw InvalidArgument("ZipfSampler: n == 0");
        if (s <= 0) throw InvalidArgument("ZipfSampler: s <= 0");
        if (q < 0) throw InvalidArgument("ZipfSampler: q < 0");
        std::vector<double> w(n);
        double total = 0;
        for (std::size_t k = 0; k < n; ++k) {
          w[k] = 1.0 / std::pow(static_cast<double>(k) + 1.0 + q, s);
          total += w[k];
        }
        for (double& x : w) x /= total;
        return w;
      }()),
      alias_(pmf_) {}

double ZipfSampler::probability(std::size_t k) const {
  if (k >= pmf_.size()) throw InvalidArgument("ZipfSampler: rank out of range");
  return pmf_[k];
}

}  // namespace sbx::util
