#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <string>

#include "util/error.h"

namespace sbx::util {

namespace {

std::size_t effective_threads(std::size_t threads) {
  return threads != 0
             ? threads
             : std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

/// Creation state of the process-wide pool. The pool itself lives in a
/// static unique_ptr so workers are joined at exit.
struct SharedPoolState {
  Mutex mutex{LockRank::kThreadPool, "ThreadPool::SharedPoolState::mutex"};
  std::unique_ptr<ThreadPool> pool SBX_GUARDED_BY(mutex);
  std::size_t requested SBX_GUARDED_BY(mutex) = 0;  // 0 = hw concurrency
};

SharedPoolState& shared_state() {
  static SharedPoolState state;
  return state;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  threads = effective_threads(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    const MutexLock lock(mutex_);
    queue_.push(std::move(packaged));
  }
  // notify_all, not notify_one: a single wakeup can be consumed by a
  // helping wait()er whose own future just became ready — it may return
  // without running the new task, leaving every worker asleep and a plain
  // future::get() caller stranded.
  cv_.notify_all();
  return fut;
}

bool ThreadPool::try_run_one() {
  std::packaged_task<void()> task;
  {
    const MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();  // exceptions are captured in the packaged_task's future
  notify_task_done();
  return true;
}

void ThreadPool::notify_task_done() {
  { const MutexLock lock(mutex_); }
  cv_.notify_all();
}

void ThreadPool::wait(std::vector<std::future<void>>& futures) {
  using std::chrono::seconds;
  const auto ready = [](std::future<void>& f) {
    return f.wait_for(seconds(0)) == std::future_status::ready;
  };
  std::exception_ptr first_error;
  for (auto& f : futures) {
    for (;;) {
      if (ready(f)) break;
      // Help instead of blocking: the pending future's task is either
      // queued (we may run it ourselves) or running on another thread
      // (whose completion will notify cv_).
      if (try_run_one()) continue;
      MutexLock lock(mutex_);
      // Explicit wait loop (not a predicate lambda: the thread safety
      // analysis cannot see the lock inside a lambda body).
      while (queue_.empty() && !ready(f)) cv_.wait(lock);
    }
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  SharedPoolState& state = shared_state();
  const MutexLock lock(state.mutex);
  if (!state.pool) {
    state.pool = std::make_unique<ThreadPool>(state.requested);
  }
  return *state.pool;
}

void ThreadPool::configure_shared(std::size_t threads) {
  SharedPoolState& state = shared_state();
  const MutexLock lock(state.mutex);
  if (state.pool) {
    if (state.pool->thread_count() != effective_threads(threads)) {
      throw Error("ThreadPool::configure_shared: shared pool already "
                  "created with " +
                  std::to_string(state.pool->thread_count()) +
                  " threads; cannot resize to " +
                  std::to_string(effective_threads(threads)));
    }
    return;
  }
  state.requested = threads;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
    notify_task_done();
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (n == 0) return;
  threads = std::min(effective_threads(threads), n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(threads);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([i, &body] { body(i); }));
  }
  pool.wait(futures);
}

}  // namespace sbx::util
