#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace sbx::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(threads);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([i, &body] { body(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sbx::util
