// sbx/util/config.h
//
// Typed key=value configuration: a declared schema (ordered parameter
// specs with canonical defaults) plus resolved Config instances carrying
// validated string values. Introduced in the eval experiment layer (PR 3)
// and moved down to util so that core::Attack — which sits below eval in
// the library stack (util -> email -> spambayes -> corpus -> core ->
// eval) — can declare per-attack parameter schemas with the same
// machinery. eval/experiment.h re-exports these names as sbx::eval::*,
// so existing experiment/bench code is unchanged.
//
// Config values are carried as validated strings: every value is parsed
// against its declared ParamType when set, so an invalid override fails at
// the API boundary with a message naming the key — never silently as 0
// (the std::atoll failure mode the bench flags used to have).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sbx::util {

// ---------------------------------------------------------------------------
// Strict scalar parsing (shared with the CLI and the bench flag parser).
// ---------------------------------------------------------------------------

/// Parses a non-negative integer; the whole string must be consumed.
/// Throws sbx::ParseError naming `what` on any malformed input.
std::uint64_t parse_uint(std::string_view text, std::string_view what);

/// Parses a finite double; the whole string must be consumed.
double parse_double(std::string_view text, std::string_view what);

/// Accepts true/false/1/0/yes/no/on/off (ASCII case-insensitive).
bool parse_bool(std::string_view text, std::string_view what);

// ---------------------------------------------------------------------------
// Config schema.
// ---------------------------------------------------------------------------

/// Value type of one config parameter. List values are comma- or
/// semicolon-separated ("0.01,0.05" or "0.01;0.05"); sweep axes split
/// their value lists on commas, so a swept list-typed parameter uses ';'
/// inside each axis value.
enum class ParamType { kUInt, kDouble, kBool, kString, kUIntList, kDoubleList };

std::string_view to_string(ParamType type);

/// One declared parameter: key, type, canonical default, one-line help.
struct ParamSpec {
  std::string key;
  ParamType type = ParamType::kString;
  std::string default_value;
  std::string description;
};

/// Ordered parameter declarations for one experiment or attack.
/// Declaration order is the canonical order (describe output, ResultDoc
/// config serialization).
class ConfigSchema {
 public:
  /// Declares a parameter; validates `default_value` against `type`.
  /// Throws sbx::InvalidArgument on duplicate keys or invalid defaults.
  ConfigSchema& add(std::string key, ParamType type,
                    std::string default_value, std::string description);

  /// nullptr when the key is not declared.
  const ParamSpec* find(std::string_view key) const;

  const std::vector<ParamSpec>& params() const { return params_; }

 private:
  std::vector<ParamSpec> params_;
};

// ---------------------------------------------------------------------------
// A resolved configuration.
// ---------------------------------------------------------------------------

/// Schema defaults plus overrides. Copyable (sweep expansion clones the
/// base config per grid point); the schema must outlive the config —
/// experiment and attack schemas live in their process-wide registries,
/// which do.
class Config {
 public:
  explicit Config(const ConfigSchema* schema);

  /// Overrides one parameter; throws sbx::InvalidArgument for unknown keys
  /// and sbx::ParseError for values invalid under the declared type.
  void set(std::string_view key, std::string_view value);

  /// Applies "key=value" (the CLI override form).
  void set_key_value(std::string_view assignment);

  // Typed getters; throw sbx::InvalidArgument when the key is not declared
  // with the requested type (a programming error in an adapter).
  std::uint64_t get_uint(std::string_view key) const;
  double get_double(std::string_view key) const;
  bool get_bool(std::string_view key) const;
  std::string get_string(std::string_view key) const;
  std::vector<std::uint64_t> get_uint_list(std::string_view key) const;
  std::vector<double> get_double_list(std::string_view key) const;

  /// The stored (already-validated) string for any declared key, whatever
  /// its type. This is the lossless form: copying raw values between
  /// configs (e.g. an experiment forwarding same-named keys into an attack
  /// config) round-trips exactly, where double -> string -> double
  /// formatting could perturb bits. Throws sbx::InvalidArgument for
  /// unknown keys.
  const std::string& raw_value(std::string_view key) const;

  /// The raw items of a list-typed value, split but not parsed (each item
  /// re-parses to exactly the element the typed getters return). Throws
  /// sbx::InvalidArgument when the key is not a list type.
  std::vector<std::string> get_list_raw(std::string_view key) const;

  /// True when the schema declares `key`.
  bool has(std::string_view key) const { return schema_->find(key) != nullptr; }

  /// Resolved (key, value) pairs in schema order.
  std::vector<std::pair<std::string, std::string>> items() const;

  const ConfigSchema& schema() const { return *schema_; }

 private:
  const std::string& raw(std::string_view key, ParamType expected) const;

  const ConfigSchema* schema_;
  std::vector<std::string> values_;  // parallel to schema params
};

}  // namespace sbx::util
