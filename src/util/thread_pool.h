// sbx/util/thread_pool.h
//
// A small fixed-size thread pool used to parallelize embarrassingly
// parallel experiment loops (cross-validation folds, per-target focused
// attack repetitions, whole sweep configs). Determinism is preserved
// because each work item owns a pre-forked RNG stream and writes to its own
// result slot; the pool only changes wall-clock time, never results.
//
// Nesting contract: the experiment harness runs sweeps of whole configs on
// the same pool the per-config fold/repetition loops use, so a task running
// on a worker may itself submit tasks and wait for them. wait() implements
// the run-inline-while-waiting policy: a thread waiting on futures drains
// queued tasks on its own stack instead of blocking, so nested waits can
// never deadlock (there is always at least one thread — the waiter itself —
// making progress) and a pool of size 1 degrades to inline execution.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace sbx::util {

/// Fixed-size worker pool. Tasks are std::function<void()>; submit() returns
/// a future for completion/exception propagation.
class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future reports completion or rethrows
  /// the task's exception.
  std::future<void> submit(std::function<void()> task) SBX_EXCLUDES(mutex_);

  /// Waits until every future is ready, executing queued tasks on the
  /// calling thread while any is pending (run-inline-while-waiting). Safe
  /// to call from a worker of this same pool — this is what makes nested
  /// submit-and-wait (sweep trials that fan out folds) deadlock-free at any
  /// pool size. Rethrows the first future exception after all are ready.
  void wait(std::vector<std::future<void>>& futures) SBX_EXCLUDES(mutex_);

  std::size_t thread_count() const { return workers_.size(); }

  /// The process-wide shared pool, created on first use with the size from
  /// configure_shared() (default: hardware concurrency). Every eval::Runner
  /// borrows this pool, so nested parallelism (sweep x folds) shares one
  /// set of workers instead of oversubscribing the machine.
  static ThreadPool& shared();

  /// Sets the shared pool's size before its first use (0 = hardware
  /// concurrency). Once the pool exists its size is fixed: a later call
  /// with the same effective size is a no-op, a conflicting size throws
  /// sbx::Error (resizing a pool other components already borrowed would
  /// silently change their resource envelope).
  static void configure_shared(std::size_t threads);

 private:
  void worker_loop() SBX_EXCLUDES(mutex_);

  /// Pops and runs one queued task on the calling thread; false when the
  /// queue is empty.
  bool try_run_one() SBX_EXCLUDES(mutex_);

  /// Publishes task completion to wait()ers without losing wakeups: the
  /// fence acquires the queue mutex so a waiter is either before its
  /// predicate check (and sees the ready future) or already blocked (and
  /// receives the notification).
  void notify_task_done() SBX_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_{LockRank::kThreadPool, "ThreadPool::mutex_"};
  CondVar cv_;
  std::queue<std::packaged_task<void()>> queue_ SBX_GUARDED_BY(mutex_);
  bool stopping_ SBX_GUARDED_BY(mutex_) = false;
};

/// Runs body(i) for i in [0, n) across a transient pool and rethrows the
/// first exception, if any. For n == 0 this is a no-op; for small n the
/// pool size shrinks to n.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace sbx::util
