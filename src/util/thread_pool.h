// sbx/util/thread_pool.h
//
// A small fixed-size thread pool used to parallelize embarrassingly
// parallel experiment loops (cross-validation folds, per-target focused
// attack repetitions). Determinism is preserved because each work item owns
// a pre-forked RNG stream and writes to its own result slot; the pool only
// changes wall-clock time, never results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sbx::util {

/// Fixed-size worker pool. Tasks are std::function<void()>; submit() returns
/// a future for completion/exception propagation.
class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future reports completion or rethrows
  /// the task's exception.
  std::future<void> submit(std::function<void()> task);

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) across a transient pool and rethrows the
/// first exception, if any. For n == 0 this is a no-op; for small n the
/// pool size shrinks to n.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace sbx::util
